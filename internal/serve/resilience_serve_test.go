package serve

// Tests of the serving layer's overload-resilience surface: admission
// control and shedding, the readiness probe, the shutdown gate, and the
// self-healing client. The chaos test (chaos_test.go) drives all of
// them at once; these pin each mechanism in isolation.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fsml/internal/core"
	"fsml/internal/resilience"
)

// blockingTrainServer builds a server whose lazy trainer blocks until
// release is closed, so tests can hold a classify request (and its
// admission slot) in flight deterministically.
func blockingTrainServer(t *testing.T, cfg Config) (*Server, *Client, chan struct{}) {
	t.Helper()
	det := tinyDetector(t)
	release := make(chan struct{})
	cfg.Train = func(TrainSpec) (*core.Detector, error) {
		<-release
		return det, nil
	}
	s, client := newTestServer(t, cfg)
	return s, client, release
}

// TestAdmissionShedsWith429 saturates a 1-slot classify limiter and
// asserts the next request is shed: HTTP 429, a Retry-After hint, the
// shed counter bumped — and the admitted request still completes.
func TestAdmissionShedsWith429(t *testing.T) {
	s, client, release := blockingTrainServer(t, Config{MaxInflight: 1, ShedAfter: -1})
	first := make(chan error, 1)
	go func() {
		_, err := client.Classify(context.Background(), vectorRequest(2))
		first <- err
	}()
	// Wait until the first request holds the only admission slot.
	waitFor(t, func() bool { return s.limClassify.Saturated() })

	resp, err := http.Post(client.BaseURL+"/v1/classify", "application/json",
		strings.NewReader(`{"vector":[0.1,0.1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit request status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("429 body = (%+v, %v), want a JSON error", body, err)
	}
	if n := s.Metrics().Counter(mShedClassify); n != 1 {
		t.Errorf("%s = %d, want 1", mShedClassify, n)
	}

	// Readiness reflects the saturation while the slot is held.
	rr, err := client.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Ready || !rr.Overloaded || rr.InflightClassify != 1 {
		t.Errorf("mid-saturation readyz = %+v, want overloaded/not-ready", rr)
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	waitFor(t, func() bool { return !s.limClassify.Saturated() })
	rr, err = client.Ready(context.Background())
	if err != nil || !rr.Ready {
		t.Fatalf("post-load readyz = (%+v, %v), want ready", rr, err)
	}
}

// TestShedWindowAbsorbsShortBursts gives the limiter a generous shed
// window: an over-limit request parks, the slot frees in time, and the
// request is served instead of shed.
func TestShedWindowAbsorbsShortBursts(t *testing.T) {
	s, client, release := blockingTrainServer(t, Config{MaxInflight: 1, ShedAfter: 10 * time.Second})
	first := make(chan error, 1)
	go func() {
		_, err := client.Classify(context.Background(), vectorRequest(2))
		first <- err
	}()
	waitFor(t, func() bool { return s.limClassify.Saturated() })
	second := make(chan error, 1)
	go func() {
		_, err := client.Classify(context.Background(), vectorRequest(1))
		second <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the second request park in the window
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first request: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("parked request should be admitted when the slot frees, got %v", err)
	}
	if n := s.Metrics().Counter(mShedClassify); n != 0 {
		t.Errorf("%s = %d, want 0 (the window absorbed the burst)", mShedClassify, n)
	}
}

// TestShutdownDrainsAdmittedRejectsNew is the shutdown/overload
// regression test: a request already admitted completes during the
// Shutdown drain, while a request arriving after shutdown begins is
// rejected with 503 — not queued — and the rejection is counted.
func TestShutdownDrainsAdmittedRejectsNew(t *testing.T) {
	s, client, release := blockingTrainServer(t, Config{})
	admitted := make(chan error, 1)
	var admittedResp *ClassifyResponse
	go func() {
		resp, err := client.Classify(context.Background(), ClassifyRequest{
			Events: []string{attrHITM, attrMiss},
			Vector: []float64{0.55, 0.05},
		})
		admittedResp = resp
		admitted <- err
	}()
	// The handler is admitted once it holds an inflight ref (it is
	// blocked inside lazy training).
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.inflight == 1
	})

	shutdownErr := make(chan error, 1)
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownErr <- s.Shutdown(sctx) }()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.shutting
	})

	// Late request: rejected at the gate, not queued behind the drain.
	if _, err := client.Classify(context.Background(), vectorRequest(1)); err == nil {
		t.Fatal("request after shutdown began should be rejected")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Fatalf("late request error = %v, want 503", err)
		}
	}
	if n := s.Metrics().Counter(mRejectShutdown); n != 1 {
		t.Errorf("%s = %d, want 1", mRejectShutdown, n)
	}
	// Readiness tells the balancer why.
	if rr, err := client.Ready(context.Background()); err != nil || rr.Ready || !rr.ShuttingDown {
		t.Errorf("mid-shutdown readyz = (%+v, %v), want shutting_down/not-ready", rr, err)
	}

	// The admitted request is still in flight; Shutdown must be waiting.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v before the admitted request finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-admitted; err != nil {
		t.Fatalf("admitted request failed during drain: %v", err)
	}
	if admittedResp == nil || admittedResp.Class != "bad-fs" {
		t.Errorf("admitted verdict = %+v, want bad-fs", admittedResp)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
}

// waitFor polls cond (10s budget) so tests synchronize on server state
// without fixed sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAtomicPersistInvisibleToDiskKeys pins the crash-safety contract
// of registry persistence: a successful persist leaves no temp file
// behind, and neither in-progress temp files nor quarantined corpses
// ever surface as warm-startable keys.
func TestAtomicPersistInvisibleToDiskKeys(t *testing.T) {
	det := tinyDetector(t)
	dir := t.TempDir()
	reg := NewRegistry(RegistryConfig{
		Dir:     dir,
		Metrics: NewMetrics(),
		Train:   func(TrainSpec) (*core.Detector, error) { return det, nil },
	})
	key := TrainSpec{Quick: true, Seed: 1}.Key()
	if _, _, err := reg.Get(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(leftovers) != 0 {
		t.Fatalf("persist left temp files behind: %v", leftovers)
	}
	// Plant the artifacts a crash mid-write / a quarantine would leave.
	for _, name := range []string{"train-quick-seed-9.json.tmp-123", "train-quick-seed-9.corrupt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if keys := reg.DiskKeys(); len(keys) != 1 || keys[0] != key {
		t.Fatalf("DiskKeys = %v, want just %q (artifacts must stay invisible)", keys, key)
	}
}

// ---------------------------------------------------------------------------
// Client retry

// okClassifyBody is a minimal valid classify response for stub servers.
const okClassifyBody = `{"class":"good","confidence":1,"degraded":false,"detector":"stub"}`

// shedNTimes builds a stub endpoint that fails the first n requests
// with the given status (and optional Retry-After) and then succeeds.
func shedNTimes(n int, status int, retryAfter string) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "stub rejection"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(okClassifyBody))
	}, &calls
}

// retryClient wires a seeded, sleepless retry policy that records the
// delays it would have slept.
func retryClient(base string, max int, seed uint64) (*Client, *[]time.Duration) {
	delays := &[]time.Duration{}
	c := NewClient(base)
	c.Retry = RetryPolicy{
		Max:     max,
		Backoff: resilience.Backoff{Seed: seed},
		Sleep: func(_ context.Context, d time.Duration) error {
			*delays = append(*delays, d)
			return nil
		},
	}
	return c, delays
}

// TestClientRetriesShedsDeterministically pins the self-healing loop:
// a POST shed with 429 is retried until it succeeds, and the backoff
// schedule is exactly the seed's deterministic schedule — byte-for-byte
// reproducible across clients.
func TestClientRetriesShedsDeterministically(t *testing.T) {
	handler, calls := shedNTimes(3, http.StatusTooManyRequests, "")
	hs := httptest.NewServer(handler)
	defer hs.Close()

	run := func() []time.Duration {
		calls.Store(0)
		c, delays := retryClient(hs.URL, 5, 11)
		resp, err := c.Classify(context.Background(), ClassifyRequest{Vector: []float64{1}})
		if err != nil {
			t.Fatalf("retried classify = %v, want success", err)
		}
		if resp.Class != "good" {
			t.Fatalf("classify = %+v", resp)
		}
		if calls.Load() != 4 {
			t.Fatalf("attempts = %d, want 4 (3 sheds + success)", calls.Load())
		}
		return *delays
	}
	first := run()
	second := run()
	want := (resilience.Backoff{Seed: 11}).Schedule(3)
	for i := range want {
		if first[i] != want[i] {
			t.Errorf("delay %d = %v, want schedule value %v", i, first[i], want[i])
		}
		if first[i] != second[i] {
			t.Errorf("delay %d not reproducible: %v vs %v", i, first[i], second[i])
		}
	}
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("delays = %v / %v, want 3 each", first, second)
	}
}

// TestClientHonorsRetryAfter: the server's hint wins when it exceeds
// the backoff delay.
func TestClientHonorsRetryAfter(t *testing.T) {
	handler, _ := shedNTimes(1, http.StatusTooManyRequests, "3")
	hs := httptest.NewServer(handler)
	defer hs.Close()
	c, delays := retryClient(hs.URL, 2, 1)
	if _, err := c.Classify(context.Background(), ClassifyRequest{Vector: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if len(*delays) != 1 || (*delays)[0] < 3*time.Second {
		t.Fatalf("delays = %v, want one wait >= the 3s Retry-After hint", *delays)
	}
}

// TestParseRetryAfterForms pins both RFC 9110 §10.2.3 forms of the
// header: delay-seconds and HTTP-date (all three date layouts
// http.ParseTime accepts). This server only ever emits delay-seconds,
// but proxies and load balancers in front of it rewrite the header
// into the date form, which the client used to ignore — silently
// dropping the server's wait hint.
func TestParseRetryAfterForms(t *testing.T) {
	now := time.Date(2026, time.August, 8, 9, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"7", 7 * time.Second},
		{"-3", 0}, // negative delay: clamp, don't wait
		{"soon", 0},
		{"Sat, 08 Aug 2026 09:00:45 GMT", 45 * time.Second},  // IMF-fixdate
		{"Saturday, 08-Aug-26 09:01:30 GMT", 90 * time.Second}, // RFC 850
		{"Sat Aug  8 09:00:10 2026", 10 * time.Second},        // asctime
		{"Sat, 08 Aug 2026 08:59:00 GMT", 0},                  // past date: clamp
	} {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestClientHonorsDateRetryAfter: a date-form hint must stretch the
// wait exactly like the delay-seconds form does.
func TestClientHonorsDateRetryAfter(t *testing.T) {
	hint := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	handler, _ := shedNTimes(1, http.StatusTooManyRequests, hint)
	hs := httptest.NewServer(handler)
	defer hs.Close()
	c, delays := retryClient(hs.URL, 2, 1)
	if _, err := c.Classify(context.Background(), ClassifyRequest{Vector: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	// The exact wait is hint minus the parse-time clock read; with the
	// header truncated to whole seconds it still lands well above the
	// seeded backoff's sub-second delays.
	if len(*delays) != 1 || (*delays)[0] < 3*time.Second {
		t.Fatalf("delays = %v, want one wait >= 3s from the date-form hint", *delays)
	}
}

// TestClientRetrySafety pins the retry-only-when-safe matrix: 5xx
// non-shed POSTs and transport-errored POSTs are NOT retried (the
// request may have executed), while GETs are.
func TestClientRetrySafety(t *testing.T) {
	t.Run("post 500 not retried", func(t *testing.T) {
		handler, calls := shedNTimes(99, http.StatusInternalServerError, "")
		hs := httptest.NewServer(handler)
		defer hs.Close()
		c, delays := retryClient(hs.URL, 5, 1)
		_, err := c.Classify(context.Background(), ClassifyRequest{Vector: []float64{1}})
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 500 {
			t.Fatalf("err = %v, want APIError 500", err)
		}
		if calls.Load() != 1 || len(*delays) != 0 {
			t.Fatalf("attempts=%d delays=%v, want exactly one attempt", calls.Load(), *delays)
		}
	})
	t.Run("post 502 not retried", func(t *testing.T) {
		handler, calls := shedNTimes(99, http.StatusBadGateway, "")
		hs := httptest.NewServer(handler)
		defer hs.Close()
		c, _ := retryClient(hs.URL, 5, 1)
		if _, err := c.Classify(context.Background(), ClassifyRequest{Vector: []float64{1}}); err == nil {
			t.Fatal("want error")
		}
		if calls.Load() != 1 {
			t.Fatalf("attempts = %d, want 1 (a POST may have executed behind a bad gateway)", calls.Load())
		}
	})
	t.Run("get 502 retried", func(t *testing.T) {
		handler, calls := shedNTimes(99, http.StatusBadGateway, "")
		hs := httptest.NewServer(handler)
		defer hs.Close()
		c, _ := retryClient(hs.URL, 2, 1)
		if _, err := c.Detectors(context.Background()); err == nil {
			t.Fatal("want error")
		}
		if calls.Load() != 3 {
			t.Fatalf("attempts = %d, want 3 (GET is idempotent)", calls.Load())
		}
	})
	t.Run("post 503 retried", func(t *testing.T) {
		// 503 is the shutdown/breaker rejection: guaranteed unprocessed.
		handler, calls := shedNTimes(2, http.StatusServiceUnavailable, "")
		hs := httptest.NewServer(handler)
		defer hs.Close()
		c, _ := retryClient(hs.URL, 5, 1)
		if _, err := c.Classify(context.Background(), ClassifyRequest{Vector: []float64{1}}); err != nil {
			t.Fatalf("retried 503 = %v, want success", err)
		}
		if calls.Load() != 3 {
			t.Fatalf("attempts = %d, want 3", calls.Load())
		}
	})
	t.Run("post transport error not retried", func(t *testing.T) {
		hs := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
		hs.Close() // connection refused from here on
		c, delays := retryClient(hs.URL, 5, 1)
		if _, err := c.Classify(context.Background(), ClassifyRequest{Vector: []float64{1}}); err == nil {
			t.Fatal("want transport error")
		}
		if len(*delays) != 0 {
			t.Fatalf("delays = %v, want no retries for a POST transport failure", *delays)
		}
	})
	t.Run("get transport error retried", func(t *testing.T) {
		hs := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
		hs.Close()
		c, delays := retryClient(hs.URL, 2, 1)
		if _, err := c.Detectors(context.Background()); err == nil {
			t.Fatal("want transport error")
		}
		if len(*delays) != 2 {
			t.Fatalf("delays = %v, want 2 retries for a GET transport failure", *delays)
		}
	})
}

// TestClientSleepHonorsContext bounds a retry wait by the caller's ctx.
func TestClientSleepHonorsContext(t *testing.T) {
	handler, _ := shedNTimes(99, http.StatusTooManyRequests, "30")
	hs := httptest.NewServer(handler)
	defer hs.Close()
	c := NewClient(hs.URL)
	c.Retry = RetryPolicy{Max: 3} // real sleep, but ctx cuts it short
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Classify(ctx, ClassifyRequest{Vector: []float64{1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from the retry sleep", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ctx-bounded retry took %v", elapsed)
	}
}
