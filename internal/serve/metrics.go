package serve

// Self-contained serving metrics: named counters and fixed-bucket
// histograms with a deterministic text rendering, no external deps. The
// set of series is small and known ahead of time (requests, batch sizes,
// cache traffic, per-stage latency), so a mutex-guarded map is plenty —
// the contended path is one lock per observation, dwarfed by the
// simulation work behind each request.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	// uppers are the inclusive upper bounds of the finite buckets; an
	// implicit +Inf bucket catches the rest.
	uppers []float64
	counts []uint64
	inf    uint64
	sum    float64
	n      uint64
}

// newHistogram returns a histogram over the given finite upper bounds
// (ascending).
func newHistogram(uppers []float64) *Histogram {
	cp := make([]float64, len(uppers))
	copy(cp, uppers)
	return &Histogram{uppers: cp, counts: make([]uint64, len(cp))}
}

// observe records one value.
func (h *Histogram) observe(v float64) {
	h.sum += v
	h.n++
	for i, up := range h.uppers {
		if v <= up {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Metrics is the server's metric registry.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]uint64
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[string]uint64{}, hists: map[string]*Histogram{}}
}

// Add increments the named counter.
func (m *Metrics) Add(name string, delta uint64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Set pins the named series to an absolute value — gauge semantics
// (peer up/down flags, ring sizes) rendered exactly like a counter.
func (m *Metrics) Set(name string, v uint64) {
	m.mu.Lock()
	m.counters[name] = v
	m.mu.Unlock()
}

// Counter returns the named counter's current value.
func (m *Metrics) Counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Observe records a value into the named histogram, creating it with the
// given buckets on first use.
func (m *Metrics) Observe(name string, buckets []float64, v float64) {
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = newHistogram(buckets)
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// HistogramCount returns the observation count of the named histogram
// (0 when it was never observed).
func (m *Metrics) HistogramCount(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.hists[name]; h != nil {
		return h.n
	}
	return 0
}

// Render writes the registry in the Prometheus text exposition style:
// counters as plain series, histograms as cumulative _bucket series plus
// _sum and _count. Series are sorted by name so scrapes are stable.
func (m *Metrics) Render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, m.counters[n])
	}
	hnames := make([]string, 0, len(m.hists))
	for n := range m.hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := m.hists[n]
		cum := uint64(0)
		for i, up := range h.uppers {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, formatBound(up), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, cum+h.inf)
		fmt.Fprintf(&b, "%s_sum %g\n", n, h.sum)
		fmt.Fprintf(&b, "%s_count %d\n", n, h.n)
	}
	return b.String()
}

// formatBound renders a bucket bound the way Prometheus does (integers
// without a decimal point).
func formatBound(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Metric names and bucket sets used by the server. Batch-size buckets
// cover the configurable MaxBatch range; latency buckets span 100µs to
// ~100s in roughly 10x steps, in seconds.
const (
	mReqClassify    = "fsml_requests_classify_total"
	mReqClassifyBin = "fsml_requests_classify_bin_total"
	mReqReport      = "fsml_requests_report_total"
	mReqDetectors   = "fsml_requests_detectors_total"
	mReqErrors      = "fsml_request_errors_total"
	mRegistryHits   = "fsml_registry_hits_total"
	mRegistryMisses = "fsml_registry_misses_total"
	mRegistryEvicts = "fsml_registry_evictions_total"
	mDegraded       = "fsml_classify_degraded_total"
	mBatchSize      = "fsml_batch_size"
	mBatchQueueSec  = "fsml_batch_queue_seconds"
	mClassifySec    = "fsml_stage_classify_seconds"
	mReportSec      = "fsml_stage_report_seconds"
	mRequestSec     = "fsml_request_seconds"

	// Resilience series: every admission, breaker, and persistence
	// decision is observable, so shed storms and failing train specs
	// show up in a scrape instead of only in latency tails.
	mShedClassify    = "fsml_shed_classify_total"
	mShedReport      = "fsml_shed_report_total"
	mShedWatch       = "fsml_shed_watch_total"
	mReqWatch        = "fsml_requests_watch_total"
	mRejectShutdown  = "fsml_rejected_shutdown_total"
	mBreakerOpened   = "fsml_breaker_opened_total"
	mBreakerProbes   = "fsml_breaker_halfopen_probes_total"
	mBreakerClosed   = "fsml_breaker_closed_total"
	mBreakerFastFail = "fsml_breaker_fastfail_total"
	mQuarantined     = "fsml_registry_quarantined_total"
)

var (
	batchBuckets   = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	latencyBuckets = []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100}
)
