// Package serve is the detection-as-a-service layer: a long-running
// HTTP server that keeps trained detectors hot in a registry, batches
// inference requests through the deterministic batch engine, and exposes
// the paper's pipeline as a JSON API.
//
// Endpoints:
//
//	POST /v1/classify    classify a normalized event vector, an uploaded
//	                     (optionally gzip) access trace, or — with a
//	                     text/x-perf-stat body — raw `perf stat` /
//	                     `perf c2c report` output
//	POST /v1/classify-bin the same classifications over the binary frame
//	                     protocol (batched vectors; see wire.go)
//	POST /v1/report      full report.Options sweep of a named workload
//	GET  /v1/watch       live monitoring: stream windowed verdicts,
//	                     phase changes, and drift alarms as SSE
//	GET  /v1/detectors   list the detector registry
//	POST /v1/detectors   register an uploaded model or a train spec
//	GET  /healthz        liveness
//	GET  /readyz         readiness: overload, shutdown, breaker state
//	GET  /metrics        self-contained counters and histograms
//
// Everything is stdlib net/http. Verdicts served through the batched
// path are byte-identical to one-shot classification: each request owns
// its seed and its simulated machine, so batching and parallelism change
// wall-clock time only.
//
// The server is built to stay up under abuse (see internal/resilience):
// classify and report admissions are bounded per endpoint and shed with
// 429 + Retry-After once the inflight cap and shed window are exhausted;
// lazy training sits behind a per-spec circuit breaker so a broken train
// spec fails fast instead of re-running full training per request; and
// registry persistence is crash-safe (atomic writes, corrupt files
// quarantined and retrained). /healthz answers as long as the process
// lives; /readyz tells load balancers whether this instance should be
// receiving traffic right now.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"fsml/internal/core"
	"fsml/internal/ensemble"
	"fsml/internal/faults"
	"fsml/internal/lifecycle"
	"fsml/internal/perfingest"
	"fsml/internal/pmu"
	"fsml/internal/report"
	"fsml/internal/resilience"
	"fsml/internal/stream"
	"fsml/internal/suite"
	"fsml/internal/trace"
	"fsml/internal/xrand"
)

// Config shapes a Server. The zero value serves on 127.0.0.1:8723 with a
// quick-trained default detector, batches of up to 16 with a 2ms linger,
// and an 8-entry registry.
type Config struct {
	// Addr is the listen address for Start (default "127.0.0.1:8723").
	Addr string
	// MaxBatch caps how many classify requests one micro-batch groups
	// (default 16; 1 disables batching).
	MaxBatch int
	// Linger is how long a forming batch waits for stragglers before it
	// executes short of MaxBatch (default 2ms; negative disables the
	// wait so batches form only from already queued requests).
	Linger time.Duration
	// Parallelism caps concurrent case simulations per batch and sweep
	// (0 = GOMAXPROCS).
	Parallelism int
	// RegistryDir, when non-empty, persists trained/uploaded models and
	// warm-starts the registry from disk (see Registry).
	RegistryDir string
	// RegistryCapacity bounds resident detectors (default 8).
	RegistryCapacity int
	// DefaultDetector is the registry key used when a request names none
	// (default: the quick seed-1 train spec, so an empty config serves
	// out of the box after one lazy training run).
	DefaultDetector string
	// DefaultTimeout is the per-request deadline when the request does
	// not set timeout_ms (default 2m; negative disables).
	DefaultTimeout time.Duration
	// Faults injects deterministic counter faults into trace-replay
	// measurements (degraded classifications then surface in responses).
	// The zero value keeps counters honest.
	Faults faults.Config
	// MaxInflight bounds concurrently admitted requests per heavy
	// endpoint — classify and report each get their own limiter, so a
	// report storm cannot starve classification (default 64; negative
	// disables admission control).
	MaxInflight int
	// ShedAfter is how long an over-limit request may wait for an
	// admission slot before it is shed with 429 + Retry-After
	// (default 100ms; negative sheds immediately).
	ShedAfter time.Duration
	// BreakerThreshold is the consecutive lazy-training failures that
	// open a train spec's circuit breaker (default 3; negative
	// disables the breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open training breaker waits
	// before admitting one half-open retrain probe (default 15s).
	BreakerCooldown time.Duration
	// Train overrides the registry's lazy trainer (tests).
	Train func(spec TrainSpec) (*core.Detector, error)
	// TrainEnsemble overrides the ensemble registry's lazy trainer
	// (tests). Nil selects the exps.Lab base + widened-grid pipeline.
	TrainEnsemble func(spec EnsembleSpec) (*ensemble.Detector, error)
	// Lifecycle, when non-nil, enables the self-healing model loop:
	// drift alarms from watch sessions debounce into a retrain, the
	// candidate shadow-scores live traffic beside the incumbent, and
	// winning the budget flips the registry's active-version pointer
	// (with automatic rollback on regression). Registry, Counters,
	// Name, HistoryDir, and Parallelism are filled by the server when
	// left zero. See GET /v1/lifecycle and `fsml lifecycle`.
	Lifecycle *lifecycle.Config
	// Logf, when non-nil, receives one line per shed/error response,
	// tagged with the request's X-FSML-Request-ID when the caller sent
	// one — that is how the two hops of a fleet failover correlate in
	// logs. Nil keeps the server silent.
	Logf func(format string, args ...any)
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8723"
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.Linger == 0 {
		c.Linger = 2 * time.Millisecond
	}
	if c.RegistryCapacity <= 0 {
		c.RegistryCapacity = 8
	}
	if c.DefaultDetector == "" {
		c.DefaultDetector = TrainSpec{Quick: true, Seed: 1}.Key()
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.ShedAfter == 0 {
		c.ShedAfter = 100 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 15 * time.Second
	}
	return c
}

// Server is the detection service.
type Server struct {
	cfg     Config
	metrics *Metrics
	reg     *Registry
	ens     *ensembleRegistry
	batcher *Batcher

	limClassify *resilience.Limiter
	limReport   *resilience.Limiter
	limWatch    *resilience.Limiter

	// lc is the self-healing model loop (nil when disabled); lcErr
	// keeps a construction failure for /v1/lifecycle to surface — a
	// broken loop config degrades to a plain server, never a dead one.
	lc    *lifecycle.Manager
	lcErr error

	// watchStop is closed when shutdown begins, so long-lived watch
	// sessions truncate at their next slice boundary and the drain can
	// complete.
	watchStop chan struct{}

	// mu guards the shutdown gate: shutting flips once, inflight counts
	// admitted handlers still running, and handlersDone closes when the
	// last of them exits after shutdown began. An admitted request
	// always completes the drain; a request arriving after shutdown
	// began is rejected with 503 at the gate, never queued.
	mu           sync.Mutex
	shutting     bool
	inflight     int
	handlersDone chan struct{}

	httpServer *http.Server
	ln         net.Listener
}

// New builds a server (not yet listening; use Start, or mount Handler
// on a listener of your own).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	shedAfter := cfg.ShedAfter
	if shedAfter < 0 {
		shedAfter = 0
	}
	s := &Server{
		cfg:     cfg,
		metrics: m,
		reg: NewRegistry(RegistryConfig{
			Capacity:         cfg.RegistryCapacity,
			Dir:              cfg.RegistryDir,
			Parallelism:      cfg.Parallelism,
			Train:            cfg.Train,
			Metrics:          m,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
		}),
		ens:          newEnsembleRegistry(cfg.RegistryDir, cfg.Parallelism, cfg.TrainEnsemble, m),
		batcher:      NewBatcher(cfg.MaxBatch, cfg.Linger, cfg.Parallelism, m),
		limClassify:  resilience.NewLimiter(cfg.MaxInflight, shedAfter),
		limReport:    resilience.NewLimiter(cfg.MaxInflight, shedAfter),
		limWatch:     resilience.NewLimiter(cfg.MaxInflight, shedAfter),
		watchStop:    make(chan struct{}),
		handlersDone: make(chan struct{}),
	}
	if cfg.Lifecycle != nil {
		s.initLifecycle()
	}
	return s
}

// Metrics exposes the server's metric registry (tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Registry exposes the detector registry (embedders that pre-register).
func (s *Server) Registry() *Registry { return s.reg }

// RequestIDHeader is the correlation header. A fleet coordinator (or
// any proxy) stamps it on forwarded requests; the server echoes it on
// every response and tags shed/error log lines with it, so the hops of
// a failover are correlatable end to end.
const RequestIDHeader = "X-FSML-Request-ID"

// Handler returns the server's routing table. Work endpoints pass the
// admission gate (shutdown rejection, per-endpoint inflight limiting);
// the health, readiness, and metrics probes never do — they must answer
// precisely when the server is refusing work. The whole table sits
// behind the request-ID echo wrapper.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", s.admit(s.limClassify, mShedClassify, s.handleClassify))
	mux.HandleFunc("POST /v1/classify-bin", s.admit(s.limClassify, mShedClassify, s.handleClassifyBin))
	mux.HandleFunc("POST /v1/report", s.admit(s.limReport, mShedReport, s.handleReport))
	mux.HandleFunc("GET /v1/watch", s.admit(s.limWatch, mShedWatch, s.handleWatch))
	mux.HandleFunc("GET /v1/detectors", s.admit(nil, "", s.handleListDetectors))
	mux.HandleFunc("POST /v1/detectors", s.admit(nil, "", s.handleRegisterDetector))
	mux.HandleFunc("GET /v1/lifecycle", s.admit(nil, "", s.handleLifecycle))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id != "" {
			w.Header().Set(RequestIDHeader, id)
		}
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
		if sw.status >= 400 {
			if id == "" {
				id = "-"
			}
			s.logf("serve: %s %s -> %d (request-id %s)", r.Method, r.URL.Path, sw.status, id)
		}
	})
}

// logf forwards to cfg.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// statusWriter records the response status for the shed/error log line.
// It passes Flush through so SSE streaming (GET /v1/watch) keeps
// working behind the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// admit is the admission-control middleware. It rejects requests that
// arrive after shutdown began (503, never queued), sheds over-limit
// requests once the shed window expires (429 + Retry-After), and tracks
// admitted handlers so Shutdown can drain them before closing the
// batcher. lim may be nil for endpoints that only need the shutdown
// gate.
func (s *Server) admit(lim *resilience.Limiter, shedMetric string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		if s.shutting {
			s.mu.Unlock()
			s.metrics.Add(mRejectShutdown, 1)
			s.writeError(w, ErrShuttingDown)
			return
		}
		s.inflight++
		s.mu.Unlock()
		defer s.handlerExit()
		if lim != nil {
			release, err := lim.Acquire(r.Context())
			if err != nil {
				if errors.Is(err, resilience.ErrOverloaded) {
					s.shed(w, shedMetric)
				} else {
					s.writeError(w, err) // the client gave up while waiting
				}
				return
			}
			defer release()
		}
		h(w, r)
	}
}

// shed renders a 429 load-shed response. Shed requests were never
// started, so clients may retry them after the Retry-After hint even
// when the verb is not idempotent.
func (s *Server) shed(w http.ResponseWriter, metric string) {
	s.metrics.Add(metric, 1)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.ShedAfter)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "serve: overloaded, request shed; retry after backoff"})
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// hint, at least 1.
func retryAfterSeconds(d time.Duration) int {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// handlerExit retires one admitted handler and completes the shutdown
// drain when it was the last.
func (s *Server) handlerExit() {
	s.mu.Lock()
	s.inflight--
	if s.shutting && s.inflight == 0 {
		select {
		case <-s.handlersDone:
		default:
			close(s.handlersDone)
		}
	}
	s.mu.Unlock()
}

// Start listens on cfg.Addr and serves until Shutdown. It returns once
// the listener is accepting, so callers can immediately dial Addr().
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpServer = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpServer.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (valid after Start; lets ":0"
// configs discover their port).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: close the admission gate (new requests
// get 503, never queued), stop accepting connections, wait for every
// already-admitted handler to complete (their batched jobs keep
// executing), then close the batcher once no handler can submit
// anymore. The whole drain is bounded by ctx: if admitted handlers or
// queued batches outlive the deadline, Shutdown returns ctx.Err() and
// leaves the drain goroutine to finish behind it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.shutting {
		s.shutting = true
		// Watch sessions are long-lived by design; signal them before
		// waiting so they truncate (emitting their done event) instead
		// of holding the drain until their workload finishes.
		close(s.watchStop)
		if s.inflight == 0 {
			close(s.handlersDone)
		}
	}
	s.mu.Unlock()
	var err error
	if s.httpServer != nil {
		err = s.httpServer.Shutdown(ctx)
	}
	drained := make(chan struct{})
	go func() {
		<-s.handlersDone  // admitted handlers first ...
		s.batcher.Close() // ... then the batches they queued
		if s.lc != nil {
			s.lc.Close() // ... then the loop (finalizes the open run)
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// Request plumbing

// maxBodyBytes bounds request bodies (uploaded traces dominate).
const maxBodyBytes = 64 << 20

// badRequestError marks client errors (HTTP 400).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// UnknownDetectorError reports a registry key that is neither resident,
// nor on disk, nor lazily trainable (HTTP 404).
type UnknownDetectorError struct{ Key string }

func (e *UnknownDetectorError) Error() string {
	return fmt.Sprintf("serve: unknown detector %q: not cached, not on disk, and not a train: spec", e.Key)
}

// reqContext applies the per-request deadline: the request's timeout_ms
// if set, else the server default.
func (s *Server) reqContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// decodeJSON reads one JSON body into v, strictly.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding request body: %v", err)
	}
	return nil
}

// writeJSON renders a 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorStatus maps an error to its HTTP status plus the Retry-After
// hint (zero when none applies). Shared by the JSON and binary error
// renderers so both protocols agree on semantics.
func errorStatus(err error) (status int, retryAfter time.Duration) {
	status = http.StatusInternalServerError
	var br *badRequestError
	var ud *UnknownDetectorError
	var tu *TrainingUnavailableError
	var se *stream.SpecError
	var fe *FrameError
	switch {
	case errors.As(err, &br), errors.As(err, &se), errors.As(err, &fe):
		status = http.StatusBadRequest
	case errors.As(err, &ud):
		status = http.StatusNotFound
	case errors.As(err, &tu):
		// The train spec's circuit is open: fail fast, and tell the
		// client when the half-open probe will be admitted.
		status = http.StatusServiceUnavailable
		retryAfter = tu.RetryAfter
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	}
	return status, retryAfter
}

// writeError maps an error to its status and renders the JSON error
// body.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.metrics.Add(mReqErrors, 1)
	status, retryAfter := errorStatus(err)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// detector resolves a request's detector key through the registry. An
// empty key means "the default": with the lifecycle loop enabled that
// is the active-version pointer (a promotion changes what this returns,
// atomically); a pointer whose model cannot be loaded falls back to the
// configured default — counted, because serving the fallback model
// beats refusing the request.
func (s *Server) detector(ctx context.Context, key string) (*core.Detector, string, error) {
	if key == "" {
		key = s.activeDetectorKey()
		det, _, err := s.reg.Get(ctx, key)
		if err != nil && key != s.cfg.DefaultDetector {
			s.metrics.Add(mLifecycleFallback, 1)
			key = s.cfg.DefaultDetector
			det, _, err = s.reg.Get(ctx, key)
		}
		return det, key, err
	}
	det, _, err := s.reg.Get(ctx, key)
	if err != nil {
		return nil, key, err
	}
	return det, key, nil
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, HealthResponse{Status: "ok", Detectors: len(s.reg.List()), Version: Version()})
}

// buildVersion memoizes Version's debug.ReadBuildInfo walk.
var buildVersion struct {
	once sync.Once
	v    string
}

// Version resolves this binary's build version once: the main module
// version when stamped, else the VCS revision, else "devel". /healthz
// reports it so a fleet prober can surface mixed-version fleets.
func Version() string {
	buildVersion.once.Do(func() {
		buildVersion.v = "devel"
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if v := info.Main.Version; v != "" && v != "(devel)" {
			buildVersion.v = v
			return
		}
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
				buildVersion.v = kv.Value[:12]
				return
			}
		}
	})
	return buildVersion.v
}

// handleReady is the readiness probe: distinct from /healthz liveness,
// it reports whether this instance should receive traffic right now.
// Not ready (503 with the same JSON body) while shutting down, while
// both admission limiters are saturated, or while a training breaker is
// open. Load balancers poll it; the chaos test pins its transitions.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	shutting := s.shutting
	s.mu.Unlock()
	resp := ReadyResponse{
		ShuttingDown:     shutting,
		Overloaded:       s.limClassify.Saturated() || s.limReport.Saturated() || s.limWatch.Saturated(),
		InflightClassify: s.limClassify.Inflight(),
		InflightReport:   s.limReport.Inflight(),
		InflightWatch:    s.limWatch.Inflight(),
		OpenBreakers:     s.reg.OpenBreakers(),
		Detectors:        len(s.reg.List()),
	}
	if s.lc != nil {
		resp.Lifecycle = string(s.lc.State())
	}
	resp.Ready = !resp.ShuttingDown && !resp.Overloaded && len(resp.OpenBreakers) == 0
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(s.metrics.Render()))
}

func (s *Server) handleListDetectors(w http.ResponseWriter, _ *http.Request) {
	s.metrics.Add(mReqDetectors, 1)
	writeJSON(w, DetectorsResponse{
		Detectors: append(s.reg.List(), s.ens.List()...),
		Capacity:  s.cfg.RegistryCapacity,
		Disk:      s.reg.DiskKeys(),
	})
}

func (s *Server) handleRegisterDetector(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add(mReqDetectors, 1)
	var req RegisterRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	switch {
	case len(req.Model) > 0 && req.Train != nil:
		s.writeError(w, badRequestf("register: set model or train, not both"))
	case len(req.Model) > 0:
		det, err := core.DecodeDetector(req.Model)
		if err != nil {
			s.writeError(w, badRequestf("register: %v", err))
			return
		}
		key, existed, err := s.reg.Register(det)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, RegisterResponse{Key: key, Cached: existed, TrainedOn: det.TrainedOn})
	case req.Train != nil:
		ctx, cancel := s.reqContext(r, 0)
		defer cancel()
		key := TrainSpec{Quick: req.Train.Quick, Seed: req.Train.Seed}.Key()
		det, hit, err := s.reg.Get(ctx, key)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, RegisterResponse{Key: key, Cached: hit, TrainedOn: det.TrainedOn})
	default:
		s.writeError(w, badRequestf("register: need a model upload or a train spec"))
	}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	// Observed via defer so error and timeout responses land in the
	// latency histogram too, not just successes.
	defer func() { s.metrics.Observe(mRequestSec, latencyBuckets, time.Since(t0).Seconds()) }()
	s.metrics.Add(mReqClassify, 1)
	if isPerfUpload(r) {
		s.classifyPerfUpload(w, r)
		return
	}
	var req ClassifyRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.reqContext(r, req.TimeoutMS)
	defer cancel()
	if err := validateClassify(&req); err != nil {
		s.writeError(w, err)
		return
	}
	vd, key, err := s.verdictorFor(ctx, r, req.Detector)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.batcher.Submit(ctx, func() (*ClassifyResponse, error) {
		c0 := time.Now()
		resp, err := s.classifyOne(vd, key, &req)
		s.metrics.Observe(mClassifySec, latencyBuckets, time.Since(c0).Seconds())
		return resp, err
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	if resp.Degraded {
		s.metrics.Add(mDegraded, 1)
	}
	writeJSON(w, resp)
}

// validateClassify enforces the request invariants before any work is
// queued.
func validateClassify(req *ClassifyRequest) error {
	hasVector := len(req.Vector) > 0
	hasTrace := len(req.Trace) > 0
	switch {
	case hasVector && hasTrace:
		return badRequestf("classify: set vector or trace, not both")
	case !hasVector && !hasTrace:
		return badRequestf("classify: need a vector or a trace")
	}
	if hasTrace && (len(req.Events) > 0 || len(req.SuspectEvents) > 0) {
		return badRequestf("classify: events/suspect_events apply to vector requests only")
	}
	if hasVector && len(req.Events) > 0 && len(req.Events) != len(req.Vector) {
		return badRequestf("classify: %d events but %d vector entries", len(req.Events), len(req.Vector))
	}
	return nil
}

// verdictorFor resolves a classify request's classifier: the ensemble
// registry when the request opted in with ?ensemble=1, the detector
// registry otherwise.
func (s *Server) verdictorFor(ctx context.Context, r *http.Request, key string) (verdictor, string, error) {
	if ensembleRequested(r.URL.Query().Get("ensemble")) {
		ens, ekey, err := s.ensembleDetector(ctx, key)
		return verdictor{ens: ens}, ekey, err
	}
	det, dkey, err := s.detector(ctx, key)
	return verdictor{det: det}, dkey, err
}

// classifyOne performs one classification inside a batch slot.
func (s *Server) classifyOne(vd verdictor, key string, req *ClassifyRequest) (*ClassifyResponse, error) {
	if len(req.Trace) > 0 {
		return s.classifyTrace(vd, key, req)
	}
	return s.classifyVector(vd, key, req)
}

// classifyVector classifies a pre-normalized event vector. The vector is
// wrapped in a synthetic sample with an instruction normalizer of 1, so
// the values pass through the detector's projection unchanged.
func (s *Server) classifyVector(vd verdictor, key string, req *ClassifyRequest) (*ClassifyResponse, error) {
	events := req.Events
	if len(events) == 0 {
		events = vd.attrs()
		if len(events) != len(req.Vector) {
			return nil, badRequestf("classify: detector expects %d events, vector has %d (name them via events)", len(events), len(req.Vector))
		}
	}
	sample := pmu.Sample{Names: events, Counts: req.Vector, Instructions: 1}
	if len(req.SuspectEvents) > 0 {
		idx := make(map[string]int, len(events))
		for i, n := range events {
			idx[n] = i
		}
		sample.Flags = make([]pmu.CountFlag, len(events))
		for _, n := range req.SuspectEvents {
			i, ok := idx[n]
			if !ok {
				return nil, badRequestf("classify: suspect event %q is not in the vector", n)
			}
			sample.Flags[i] = pmu.FlagStuck
		}
	}
	rr, paths, err := vd.classify(sample)
	if err != nil {
		return nil, badRequestf("classify: %v", err)
	}
	s.mirror(key, rr.Class, rr.Confidence, sample, nil)
	return &ClassifyResponse{
		Class: rr.Class, Confidence: rr.Confidence, Degraded: rr.Degraded,
		Suspects: rr.Suspects, Detector: key, Pathologies: paths,
	}, nil
}

// classifyTrace replays an uploaded trace on a fresh simulated machine,
// measures it with the emulated PMU (under the server's fault config,
// if any), and classifies the measurement. An unusable sample — possible
// only under fault injection — gets re-seeded retries, mirroring the
// offline collector.
func (s *Server) classifyTrace(vd verdictor, key string, req *ClassifyRequest) (*ClassifyResponse, error) {
	tr, err := trace.Parse(bytes.NewReader(req.Trace))
	if err != nil {
		return nil, badRequestf("classify: %v", err)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	c := core.NewCollector()
	retries := 0
	if s.cfg.Faults.Enabled() {
		c.Faults = faults.New(s.cfg.Faults)
		retries = 2
	}
	desc := fmt.Sprintf("serve/trace/seed=%d", seed)
	var obs core.Observation
	for a := 0; ; a++ {
		attempt := seed
		if a > 0 {
			attempt = xrand.DeriveSeed(seed, uint64(a))
		}
		obs = c.Measure(desc, attempt, tr.Kernels())
		if obs.Sample.Instructions > 0 || a >= retries {
			break
		}
	}
	rr, paths, err := vd.classify(obs.Sample)
	if err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	// Trace requests carry a replayable workload, so the shadow scorer
	// can judge a disagreement against instrumentation ground truth.
	s.mirror(key, rr.Class, rr.Confidence, obs.Sample, tr.Kernels())
	return &ClassifyResponse{
		Class: rr.Class, Confidence: rr.Confidence, Degraded: rr.Degraded,
		Suspects: rr.Suspects, Detector: key, Seconds: obs.Seconds,
		Pathologies: paths,
	}, nil
}

// PerfContentType is the POST /v1/classify media type for raw perf
// tool output: the body is `perf stat` (human or -x, CSV, plain or
// interval) or `perf c2c report` text, exactly as the tool printed it.
// Because the body is not the JSON envelope, the detector key and
// deadline ride in the query string: ?detector=KEY&timeout_ms=N.
const PerfContentType = "text/x-perf-stat"

// isPerfUpload reports whether a classify request carries raw perf
// output instead of the JSON request envelope.
func isPerfUpload(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == PerfContentType
}

// classifyPerfUpload classifies a raw perf capture: parse (format
// auto-detected), map onto the Table-2 feature space through the alias
// table, and classify robustly — features the capture did not measure
// degrade the verdict's confidence rather than failing the request.
// The response carries the detected format and any unmapped events so
// callers can tell how much of their capture was actually used.
func (s *Server) classifyPerfUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, badRequestf("classify: reading perf upload: %v", err))
		return
	}
	rep, err := perfingest.Parse(bytes.NewReader(body))
	if err != nil {
		s.writeError(w, badRequestf("classify: %v", err))
		return
	}
	sample, mapping, err := rep.Sample()
	if err != nil {
		s.writeError(w, badRequestf("classify: %v", err))
		return
	}
	q := r.URL.Query()
	var timeoutMS int64
	if v := q.Get("timeout_ms"); v != "" {
		timeoutMS, err = strconv.ParseInt(v, 10, 64)
		if err != nil || timeoutMS < 0 {
			s.writeError(w, badRequestf("classify: bad timeout_ms %q", v))
			return
		}
	}
	ctx, cancel := s.reqContext(r, timeoutMS)
	defer cancel()
	vd, key, err := s.verdictorFor(ctx, r, q.Get("detector"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.batcher.Submit(ctx, func() (*ClassifyResponse, error) {
		c0 := time.Now()
		defer func() { s.metrics.Observe(mClassifySec, latencyBuckets, time.Since(c0).Seconds()) }()
		rr, paths, err := vd.classify(sample)
		if err != nil {
			return nil, badRequestf("classify: %v", err)
		}
		s.mirror(key, rr.Class, rr.Confidence, sample, nil)
		return &ClassifyResponse{
			Class: rr.Class, Confidence: rr.Confidence, Degraded: rr.Degraded,
			Suspects: rr.Suspects, Detector: key, Pathologies: paths,
			PerfFormat: string(rep.Format), UnmappedEvents: mapping.Unmapped,
		}, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	if resp.Degraded {
		s.metrics.Add(mDegraded, 1)
	}
	writeJSON(w, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	// Deferred so error and timeout responses are measured too.
	defer func() {
		sec := time.Since(t0).Seconds()
		s.metrics.Observe(mReportSec, latencyBuckets, sec)
		s.metrics.Observe(mRequestSec, latencyBuckets, sec)
	}()
	s.metrics.Add(mReqReport, 1)
	var req ReportRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Program == "" {
		s.writeError(w, badRequestf("report: need a program name"))
		return
	}
	if _, ok := suite.Lookup(req.Program); !ok {
		s.writeError(w, badRequestf("report: unknown program %q (see `fsml list`)", req.Program))
		return
	}
	ctx, cancel := s.reqContext(r, req.TimeoutMS)
	defer cancel()
	det, key, err := s.detector(ctx, req.Detector)
	if err != nil {
		s.writeError(w, err)
		return
	}
	opts := report.Options{
		Threads:     req.Threads,
		MaxInputs:   req.MaxInputs,
		Seed:        req.Seed,
		Parallelism: s.cfg.Parallelism,
	}
	rep, err := report.BuildContext(ctx, det, req.Program, opts)
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		s.writeError(w, err)
		return
	}
	writeJSON(w, ReportResponse{Detector: key, Report: rep})
}
