package serve

// The detector registry: a content-hash-keyed, LRU-bounded cache of
// trained core.Detectors. Detectors enter it three ways — uploaded over
// the wire (POST /v1/detectors), warm-loaded from a disk directory of
// serialized models, or trained lazily on first use from a train-spec
// key. Concurrent requests for the same untrained key share one training
// run (singleflight): the first caller does the work, everyone else
// waits on the entry, and nobody trains twice.

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fsml/internal/core"
	"fsml/internal/exps"
)

// TrainSpec identifies a lazily trainable detector: the training options
// that matter for the resulting model. Its Key is canonical, so two
// requests that mean the same training land on the same registry entry.
type TrainSpec struct {
	// Quick selects the reduced collection grids.
	Quick bool
	// Seed drives collection and training determinism (0 means 1).
	Seed uint64
}

// Key returns the canonical registry key of the spec.
func (s TrainSpec) Key() string {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return fmt.Sprintf("train:quick=%t,seed=%d", s.Quick, seed)
}

// parseTrainKey parses a "train:quick=...,seed=..." registry key.
func parseTrainKey(key string) (TrainSpec, bool) {
	rest, ok := strings.CutPrefix(key, "train:")
	if !ok {
		return TrainSpec{}, false
	}
	spec := TrainSpec{}
	for _, part := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return TrainSpec{}, false
		}
		switch k {
		case "quick":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return TrainSpec{}, false
			}
			spec.Quick = b
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return TrainSpec{}, false
			}
			spec.Seed = n
		default:
			return TrainSpec{}, false
		}
	}
	return spec, true
}

// ContentKey returns the content-hash registry key of a serialized
// detector: "sha256:" plus the first 16 hex digits of the SHA-256 of its
// canonical encoding. Registering byte-identical models is idempotent.
func ContentKey(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return "sha256:" + hex.EncodeToString(sum[:])[:16]
}

// RegistryConfig configures a Registry.
type RegistryConfig struct {
	// Capacity bounds the resident detectors (LRU eviction; default 8).
	Capacity int
	// Dir, when non-empty, is the disk side of the registry: models are
	// persisted there as <key>.json after upload or training, and a Get
	// miss checks it before training (warm start across restarts).
	Dir string
	// Parallelism caps concurrent case simulations during lazy training
	// (0 = GOMAXPROCS).
	Parallelism int
	// Train overrides the lazy trainer (tests inject counting or instant
	// trainers). Nil selects the exps.Lab pipeline.
	Train func(spec TrainSpec) (*core.Detector, error)
	// Metrics, when non-nil, receives hit/miss/eviction counts.
	Metrics *Metrics
}

// entry is one registry slot. ready is closed once det/err are final;
// until then the entry is "loading" and Get calls wait on it. det,
// source, and err are only ever written under Registry.mu, so List may
// read them under the lock without waiting on ready.
type entry struct {
	key    string
	source string // "upload" | "disk" | "trained"
	ready  chan struct{}
	det    *core.Detector
	err    error
	elem   *list.Element
}

// DetectorInfo is one row of a registry listing.
type DetectorInfo struct {
	Key    string `json:"key"`
	State  string `json:"state"`  // "ready" | "loading"
	Source string `json:"source"` // "upload" | "disk" | "trained"
	// TrainedOn is the training-set composition (ready entries only).
	TrainedOn map[string]int `json:"trained_on,omitempty"`
}

// Registry is the detector cache. Safe for concurrent use.
type Registry struct {
	cfg RegistryConfig

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	if cfg.Train == nil {
		par := cfg.Parallelism
		cfg.Train = func(spec TrainSpec) (*core.Detector, error) {
			seed := spec.Seed
			if seed == 0 {
				seed = 1
			}
			lab := &exps.Lab{Quick: spec.Quick, Seed: seed, Parallelism: par}
			return lab.Detector()
		}
	}
	return &Registry{cfg: cfg, entries: map[string]*entry{}, lru: list.New()}
}

// count bumps a metrics counter if metrics are attached.
func (r *Registry) count(name string) {
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.Add(name, 1)
	}
}

// Get returns the detector for key, loading or training it on first use.
// hit reports whether the key was already resident (ready or in flight);
// a waiter on an in-flight load counts as a hit because it triggered no
// work. Waiting is bounded by ctx.
func (r *Registry) Get(ctx context.Context, key string) (det *core.Detector, hit bool, err error) {
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.count(mRegistryHits)
		select {
		case <-e.ready:
			return e.det, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	// Miss: create the in-flight entry while still holding the lock, so
	// every concurrent Get for this key finds it and waits instead of
	// training again (singleflight).
	e := &entry{key: key, ready: make(chan struct{})}
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.evictLocked()
	r.mu.Unlock()
	r.count(mRegistryMisses)

	// Publish the load result under the lock: List reads e.source (and
	// Get's hit path reads det/err after ready) concurrently, so the
	// fields must never be written outside r.mu.
	det, source, lerr := r.load(key)
	r.mu.Lock()
	e.det, e.source, e.err = det, source, lerr
	close(e.ready)
	if lerr != nil {
		// Drop the failed entry so a later request can retry.
		if r.entries[key] == e {
			delete(r.entries, key)
			r.lru.Remove(e.elem)
		}
	}
	r.mu.Unlock()
	if lerr != nil {
		return nil, false, lerr
	}
	return det, false, nil
}

// load resolves a missing key: disk first (warm start), then the lazy
// trainer for train-spec keys. Unknown content-hash keys are an error —
// the bytes behind them exist nowhere.
func (r *Registry) load(key string) (*core.Detector, string, error) {
	if r.cfg.Dir != "" {
		path := r.fileFor(key)
		blob, err := os.ReadFile(path)
		switch {
		case err == nil:
			det, derr := core.DecodeDetector(blob)
			if derr != nil {
				// A typed *core.FormatError names the found and wanted
				// versions; wrap it with the file so the operator knows
				// which registry entry to retrain or delete.
				return nil, "", fmt.Errorf("serve: registry warm start from %s: %w", path, derr)
			}
			return det, "disk", nil
		case !errors.Is(err, fs.ErrNotExist):
			// A model file exists but cannot be read (permissions, I/O
			// fault). Falling through to retraining would mask the disk
			// problem and could overwrite the file; surface it instead.
			return nil, "", fmt.Errorf("serve: registry warm start reading %s: %w", path, err)
		}
	}
	if spec, ok := parseTrainKey(key); ok {
		det, err := r.cfg.Train(spec)
		if err != nil {
			return nil, "", fmt.Errorf("serve: training %s: %w", key, err)
		}
		r.persist(key, det)
		return det, "trained", nil
	}
	return nil, "", &UnknownDetectorError{Key: key}
}

// Register inserts an already trained detector under its content-hash
// key, persisting it when a registry dir is configured. Registering the
// same model twice is an idempotent cache hit.
func (r *Registry) Register(det *core.Detector) (key string, existed bool, err error) {
	encoded, err := det.Encode()
	if err != nil {
		return "", false, err
	}
	key = ContentKey(encoded)
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.count(mRegistryHits)
		<-e.ready // content-keyed entries are inserted ready; never blocks long
		return key, true, e.err
	}
	e := &entry{key: key, source: "upload", ready: make(chan struct{}), det: det}
	close(e.ready)
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.evictLocked()
	r.mu.Unlock()
	r.count(mRegistryMisses)
	r.persist(key, det)
	return key, false, nil
}

// persist writes a model file for key if a dir is configured. Best
// effort: serving keeps working from memory if the disk write fails.
func (r *Registry) persist(key string, det *core.Detector) {
	if r.cfg.Dir == "" {
		return
	}
	blob, err := det.Encode()
	if err != nil {
		return
	}
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return
	}
	_ = os.WriteFile(r.fileFor(key), blob, 0o644)
}

// fileFor maps a registry key to its model file path. ':' is not
// portable in file names, so it becomes '-'.
func (r *Registry) fileFor(key string) string {
	return filepath.Join(r.cfg.Dir, strings.ReplaceAll(key, ":", "-")+".json")
}

// evictLocked drops least-recently-used ready entries until the resident
// count fits the capacity. In-flight entries are never evicted — their
// waiters hold references — so a burst of distinct in-flight keys may
// transiently exceed the bound.
func (r *Registry) evictLocked() {
	for len(r.entries) > r.cfg.Capacity {
		evicted := false
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			select {
			case <-e.ready:
			default:
				continue // still loading
			}
			delete(r.entries, e.key)
			r.lru.Remove(el)
			r.count(mRegistryEvicts)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// List returns the resident entries, most recently used first.
func (r *Registry) List() []DetectorInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DetectorInfo, 0, len(r.entries))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		info := DetectorInfo{Key: e.key, State: "loading", Source: e.source}
		select {
		case <-e.ready:
			if e.err == nil {
				info.State = "ready"
				info.TrainedOn = e.det.TrainedOn
			}
		default:
		}
		out = append(out, info)
	}
	return out
}

// DiskKeys lists the model keys available in the registry dir (sorted),
// whether or not they are resident. Used by the listing endpoint so a
// warm-startable model is discoverable before its first request.
func (r *Registry) DiskKeys() []string {
	if r.cfg.Dir == "" {
		return nil
	}
	glob, err := filepath.Glob(filepath.Join(r.cfg.Dir, "*.json"))
	if err != nil {
		return nil
	}
	keys := make([]string, 0, len(glob))
	for _, path := range glob {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		// Reverse the ':' -> '-' mangling for the two known key families.
		if rest, ok := strings.CutPrefix(name, "sha256-"); ok {
			keys = append(keys, "sha256:"+rest)
		} else if rest, ok := strings.CutPrefix(name, "train-"); ok {
			keys = append(keys, "train:"+rest)
		}
	}
	sort.Strings(keys)
	return keys
}
