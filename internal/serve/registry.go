package serve

// The detector registry: a content-hash-keyed, LRU-bounded cache of
// trained core.Detectors. Detectors enter it three ways — uploaded over
// the wire (POST /v1/detectors), warm-loaded from a disk directory of
// serialized models, or trained lazily on first use from a train-spec
// key. Concurrent requests for the same untrained key share one training
// run (singleflight): the first caller does the work, everyone else
// waits on the entry, and nobody trains twice.

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fsml/internal/core"
	"fsml/internal/exps"
	"fsml/internal/fsatomic"
	"fsml/internal/resilience"
)

// TrainSpec identifies a lazily trainable detector: the training options
// that matter for the resulting model. Its Key is canonical, so two
// requests that mean the same training land on the same registry entry.
type TrainSpec struct {
	// Quick selects the reduced collection grids.
	Quick bool
	// Seed drives collection and training determinism (0 means 1).
	Seed uint64
}

// Key returns the canonical registry key of the spec.
func (s TrainSpec) Key() string {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return fmt.Sprintf("train:quick=%t,seed=%d", s.Quick, seed)
}

// parseTrainKey parses a "train:quick=...,seed=..." registry key.
func parseTrainKey(key string) (TrainSpec, bool) {
	rest, ok := strings.CutPrefix(key, "train:")
	if !ok {
		return TrainSpec{}, false
	}
	spec := TrainSpec{}
	for _, part := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return TrainSpec{}, false
		}
		switch k {
		case "quick":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return TrainSpec{}, false
			}
			spec.Quick = b
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return TrainSpec{}, false
			}
			spec.Seed = n
		default:
			return TrainSpec{}, false
		}
	}
	return spec, true
}

// ContentKey returns the content-hash registry key of a serialized
// detector: "sha256:" plus the first 16 hex digits of the SHA-256 of its
// canonical encoding. Registering byte-identical models is idempotent.
func ContentKey(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return "sha256:" + hex.EncodeToString(sum[:])[:16]
}

// ModelKey returns the registry key a serialized model will register
// under: the content hash of its canonical re-encoding (Register
// re-encodes, so a semantically identical model with different JSON
// whitespace still lands on the same key). The fleet replicator uses it
// to place an upload on the hash ring before any peer has decoded it.
func ModelKey(model []byte) (string, error) {
	det, err := core.DecodeDetector(model)
	if err != nil {
		return "", err
	}
	encoded, err := det.Encode()
	if err != nil {
		return "", err
	}
	return ContentKey(encoded), nil
}

// RegistryConfig configures a Registry.
type RegistryConfig struct {
	// Capacity bounds the resident detectors (LRU eviction; default 8).
	Capacity int
	// Dir, when non-empty, is the disk side of the registry: models are
	// persisted there as <key>.json after upload or training, and a Get
	// miss checks it before training (warm start across restarts).
	Dir string
	// Parallelism caps concurrent case simulations during lazy training
	// (0 = GOMAXPROCS).
	Parallelism int
	// Train overrides the lazy trainer (tests inject counting or instant
	// trainers). Nil selects the exps.Lab pipeline.
	Train func(spec TrainSpec) (*core.Detector, error)
	// Metrics, when non-nil, receives hit/miss/eviction counts.
	Metrics *Metrics
	// BreakerThreshold is the consecutive training failures that open a
	// train spec's circuit breaker, after which requests for that spec
	// fail fast instead of re-running full training (default 3;
	// negative disables the breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting
	// one half-open probe retrain (default 15s).
	BreakerCooldown time.Duration
	// Now overrides the breakers' time source (tests).
	Now func() time.Time
}

// entry is one registry slot. ready is closed once det/err are final;
// until then the entry is "loading" and Get calls wait on it. det,
// source, and err are only ever written under Registry.mu, so List may
// read them under the lock without waiting on ready.
type entry struct {
	key    string
	source string // "upload" | "disk" | "trained"
	ready  chan struct{}
	det    *core.Detector
	err    error
	elem   *list.Element
}

// DetectorInfo is one row of a registry listing.
type DetectorInfo struct {
	Key    string `json:"key"`
	State  string `json:"state"`  // "ready" | "loading"
	Source string `json:"source"` // "upload" | "disk" | "trained"
	// TrainedOn is the training-set composition (ready entries only).
	TrainedOn map[string]int `json:"trained_on,omitempty"`
}

// Registry is the detector cache. Safe for concurrent use.
type Registry struct {
	cfg RegistryConfig

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recently used; values are *entry
	breakers map[string]*resilience.Breaker
	// active maps logical detector names to their version pointers. The
	// keys a pointer references (current and retained previous) are
	// pinned against LRU eviction: evicting the only resident copy of
	// the version the default path serves would turn the next default
	// classify into a 404 (content keys cannot be retrained).
	active map[string]ActivePointer
}

// ActivePointer is the per-name active-version record the model
// lifecycle flips on promotion and rollback: which registry key is
// authoritative for the name right now, which previous version is
// retained for rollback, and a monotonically increasing version number.
// The map of pointers persists crash-safe (fsync+rename) beside the
// model files, so a restart resumes serving the promoted version.
type ActivePointer struct {
	// Key is the authoritative registry key for the name.
	Key string `json:"key"`
	// Previous is the retained rollback target ("" on the first
	// promotion, when the incumbent was the configured default).
	Previous string `json:"previous,omitempty"`
	// Version counts promotions and rollbacks of this name, starting
	// at 1.
	Version int `json:"version"`
}

// activeFileName is the registry-dir file holding the active-version
// pointer map. It intentionally has no "sha256-"/"train-" prefix, so
// DiskKeys never mistakes it for a model.
const activeFileName = "active.json"

// NewRegistry returns an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 15 * time.Second
	}
	if cfg.Train == nil {
		par := cfg.Parallelism
		cfg.Train = func(spec TrainSpec) (*core.Detector, error) {
			seed := spec.Seed
			if seed == 0 {
				seed = 1
			}
			lab := &exps.Lab{Quick: spec.Quick, Seed: seed, Parallelism: par}
			return lab.Detector()
		}
	}
	r := &Registry{
		cfg:      cfg,
		entries:  map[string]*entry{},
		lru:      list.New(),
		breakers: map[string]*resilience.Breaker{},
		active:   map[string]ActivePointer{},
	}
	r.loadActive()
	return r
}

// loadActive warm-starts the active-version pointers from the registry
// dir. A pointer file that does not decode is quarantined like a
// corrupt model: the names fall back to their configured defaults (a
// lost promotion, never a wrong or missing answer).
func (r *Registry) loadActive() {
	if r.cfg.Dir == "" {
		return
	}
	path := filepath.Join(r.cfg.Dir, activeFileName)
	blob, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var ptrs map[string]ActivePointer
	if err := json.Unmarshal(blob, &ptrs); err != nil {
		_ = os.Rename(path, path+".corrupt")
		r.count(mQuarantined)
		return
	}
	for name, p := range ptrs {
		if name != "" && p.Key != "" {
			r.active[name] = p
		}
	}
}

// persistActive rewrites the pointer file crash-safe. Callers hold
// r.mu. Best effort, like model persistence: with no dir (or a failing
// disk) promotions still flip in memory.
func (r *Registry) persistActive() {
	if r.cfg.Dir == "" {
		return
	}
	blob, err := json.MarshalIndent(r.active, "", "  ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return
	}
	_ = atomicWriteFile(filepath.Join(r.cfg.Dir, activeFileName), blob, 0o644)
}

// SetActive points name at the given registry key, retaining previous
// as the rollback target and persisting the pointer map crash-safe.
// The referenced keys become pinned against LRU eviction.
func (r *Registry) SetActive(name, key, previous string, version int) error {
	if name == "" {
		return fmt.Errorf("serve: SetActive: empty name")
	}
	if key == "" {
		return fmt.Errorf("serve: SetActive %q: empty key", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active[name] = ActivePointer{Key: key, Previous: previous, Version: version}
	r.persistActive()
	return nil
}

// ClearActive removes name's pointer (and the pins it held), restoring
// default resolution for the name.
func (r *Registry) ClearActive(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.active[name]; !ok {
		return nil
	}
	delete(r.active, name)
	r.persistActive()
	return nil
}

// Active returns name's pointer fields (ok=false when the name has no
// active version and resolves to its configured default).
func (r *Registry) Active(name string) (key, previous string, version int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.active[name]
	return p.Key, p.Previous, p.Version, ok
}

// ActivePointers snapshots the pointer map (sorted iteration is up to
// the caller; the map is a copy).
func (r *Registry) ActivePointers() map[string]ActivePointer {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]ActivePointer, len(r.active))
	for name, p := range r.active {
		out[name] = p
	}
	return out
}

// Resolve fetches a key outside any request context — the lifecycle
// manager resolving a rollback target. It shares Get's full load path
// (warm start, lazy training, breakers).
func (r *Registry) Resolve(key string) (*core.Detector, error) {
	det, _, err := r.Get(context.Background(), key)
	return det, err
}

// pinnedLocked returns the keys the active pointers reference (current
// and retained previous). Callers hold r.mu.
func (r *Registry) pinnedLocked() map[string]bool {
	if len(r.active) == 0 {
		return nil
	}
	pinned := make(map[string]bool, 2*len(r.active))
	for _, p := range r.active {
		pinned[p.Key] = true
		if p.Previous != "" {
			pinned[p.Previous] = true
		}
	}
	return pinned
}

// breakerFor returns the training circuit breaker of a train-spec key,
// creating it on first use (nil when breakers are disabled). Breaker
// transitions feed the metrics so an open circuit is visible in a
// scrape and in /readyz.
func (r *Registry) breakerFor(key string) *resilience.Breaker {
	if r.cfg.BreakerThreshold < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[key]
	if !ok {
		b = resilience.NewBreaker(r.cfg.BreakerThreshold, r.cfg.BreakerCooldown)
		if r.cfg.Now != nil {
			b.SetClock(r.cfg.Now)
		}
		b.OnTransition(func(_, to resilience.BreakerState) {
			switch to {
			case resilience.Open:
				r.count(mBreakerOpened)
			case resilience.HalfOpen:
				r.count(mBreakerProbes)
			case resilience.Closed:
				r.count(mBreakerClosed)
			}
		})
		r.breakers[key] = b
	}
	return b
}

// OpenBreakers lists the train-spec keys whose breaker is not closed
// (sorted). /readyz reports them so an operator sees which specs are
// failing without grepping logs.
func (r *Registry) OpenBreakers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for key, b := range r.breakers {
		if b.State() != resilience.Closed {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// TrainingUnavailableError reports a train-spec key whose circuit
// breaker is open: training has failed repeatedly and the registry is
// failing fast until the cooldown's half-open probe (HTTP 503 with
// Retry-After).
type TrainingUnavailableError struct {
	// Key is the failing train-spec registry key.
	Key string
	// RetryAfter is how long until the breaker admits a probe.
	RetryAfter time.Duration
}

func (e *TrainingUnavailableError) Error() string {
	return fmt.Sprintf("serve: training for %s keeps failing; circuit open, retry in %s", e.Key, e.RetryAfter.Round(time.Millisecond))
}

// count bumps a metrics counter if metrics are attached.
func (r *Registry) count(name string) {
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.Add(name, 1)
	}
}

// Get returns the detector for key, loading or training it on first use.
// hit reports whether the key was already resident (ready or in flight);
// a waiter on an in-flight load counts as a hit because it triggered no
// work. Waiting is bounded by ctx.
func (r *Registry) Get(ctx context.Context, key string) (det *core.Detector, hit bool, err error) {
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.count(mRegistryHits)
		select {
		case <-e.ready:
			return e.det, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	// Miss: create the in-flight entry while still holding the lock, so
	// every concurrent Get for this key finds it and waits instead of
	// training again (singleflight).
	e := &entry{key: key, ready: make(chan struct{})}
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.evictLocked()
	r.mu.Unlock()
	r.count(mRegistryMisses)

	// Publish the load result under the lock: List reads e.source (and
	// Get's hit path reads det/err after ready) concurrently, so the
	// fields must never be written outside r.mu.
	det, source, lerr := r.load(key)
	r.mu.Lock()
	e.det, e.source, e.err = det, source, lerr
	close(e.ready)
	if lerr != nil {
		// Drop the failed entry so a later request can retry.
		if r.entries[key] == e {
			delete(r.entries, key)
			r.lru.Remove(e.elem)
		}
	}
	r.mu.Unlock()
	if lerr != nil {
		return nil, false, lerr
	}
	return det, false, nil
}

// load resolves a missing key: disk first (warm start), then the lazy
// trainer for train-spec keys. Unknown content-hash keys are an error —
// the bytes behind them exist nowhere.
//
// A model file that exists but does not decode (truncated by a crash
// mid-write, bit-rotted, or written by an incompatible build) is
// quarantined — renamed to <name>.corrupt — and the key falls through
// to the lazy trainer, so one bad file degrades a restart to a retrain
// instead of making the key permanently unservable. Content-hash keys
// have no trainer to fall through to; for them the quarantine error
// surfaces.
func (r *Registry) load(key string) (*core.Detector, string, error) {
	if r.cfg.Dir != "" {
		path := r.fileFor(key)
		blob, err := os.ReadFile(path)
		switch {
		case err == nil:
			det, derr := core.DecodeDetector(blob)
			if derr == nil {
				return det, "disk", nil
			}
			if qerr := r.quarantine(path); qerr != nil {
				// Can't even move the bad file aside; surface the decode
				// error (a typed *core.FormatError names the found and
				// wanted versions) so the operator knows which entry to
				// delete by hand.
				return nil, "", fmt.Errorf("serve: registry warm start from %s: %w (quarantine failed: %v)", path, derr, qerr)
			}
			if _, ok := parseTrainKey(key); !ok {
				return nil, "", fmt.Errorf("serve: registry warm start from %s: %w (quarantined to %s; %s is content-keyed and must be re-uploaded)", path, derr, quarantinePath(path), key)
			}
			// Train-spec key: retrain below as if the file never existed.
		case !errors.Is(err, fs.ErrNotExist):
			// A model file exists but cannot be read (permissions, I/O
			// fault). Falling through to retraining would mask the disk
			// problem and could overwrite the file; surface it instead.
			return nil, "", fmt.Errorf("serve: registry warm start reading %s: %w", path, err)
		}
	}
	if spec, ok := parseTrainKey(key); ok {
		br := r.breakerFor(key)
		if br != nil {
			if err := br.Allow(); err != nil {
				r.count(mBreakerFastFail)
				return nil, "", &TrainingUnavailableError{Key: key, RetryAfter: br.RetryAfter()}
			}
		}
		det, err := r.cfg.Train(spec)
		if err != nil {
			if br != nil {
				br.Failure()
			}
			return nil, "", fmt.Errorf("serve: training %s: %w", key, err)
		}
		if br != nil {
			br.Success()
		}
		r.persist(key, det)
		return det, "trained", nil
	}
	return nil, "", &UnknownDetectorError{Key: key}
}

// quarantinePath maps a model file to its quarantine name.
func quarantinePath(path string) string {
	return strings.TrimSuffix(path, ".json") + ".corrupt"
}

// quarantine moves a corrupt model file aside so the next load does not
// trip over it again and the bytes stay available for a post-mortem.
func (r *Registry) quarantine(path string) error {
	if err := os.Rename(path, quarantinePath(path)); err != nil {
		return err
	}
	r.count(mQuarantined)
	return nil
}

// Register inserts an already trained detector under its content-hash
// key, persisting it when a registry dir is configured. Registering the
// same model twice is an idempotent cache hit.
func (r *Registry) Register(det *core.Detector) (key string, existed bool, err error) {
	encoded, err := det.Encode()
	if err != nil {
		return "", false, err
	}
	key = ContentKey(encoded)
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.count(mRegistryHits)
		<-e.ready // content-keyed entries are inserted ready; never blocks long
		return key, true, e.err
	}
	e := &entry{key: key, source: "upload", ready: make(chan struct{}), det: det}
	close(e.ready)
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.evictLocked()
	r.mu.Unlock()
	r.count(mRegistryMisses)
	r.persist(key, det)
	return key, false, nil
}

// persist writes a model file for key if a dir is configured. Best
// effort: serving keeps working from memory if the disk write fails.
// The write is crash-safe — temp file, fsync, atomic rename — so a
// crash mid-persist leaves either the previous good model or nothing,
// never a truncated file (which a later warm start would have to
// quarantine and retrain).
func (r *Registry) persist(key string, det *core.Detector) {
	if r.cfg.Dir == "" {
		return
	}
	blob, err := det.Encode()
	if err != nil {
		return
	}
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return
	}
	_ = atomicWriteFile(r.fileFor(key), blob, 0o644)
}

// atomicWriteFile is the shared crash-safe writer (temp file, fsync,
// atomic rename). The temp name never matches the registry's *.json
// glob, so a concurrent DiskKeys cannot list a half-written model.
func atomicWriteFile(path string, blob []byte, perm os.FileMode) error {
	return fsatomic.WriteFile(path, blob, perm)
}

// fileFor maps a registry key to its model file path. ':' is not
// portable in file names, so it becomes '-'.
func (r *Registry) fileFor(key string) string {
	return filepath.Join(r.cfg.Dir, strings.ReplaceAll(key, ":", "-")+".json")
}

// evictLocked drops least-recently-used ready entries until the resident
// count fits the capacity. In-flight entries are never evicted — their
// waiters hold references — so a burst of distinct in-flight keys may
// transiently exceed the bound. Keys referenced by an active-version
// pointer (current or retained previous) are pinned: a promoted
// content-keyed model has no trainer to fall back to, so evicting it
// under cache pressure would break the authoritative serving path.
func (r *Registry) evictLocked() {
	pinned := r.pinnedLocked()
	for len(r.entries) > r.cfg.Capacity {
		evicted := false
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if pinned[e.key] {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // still loading
			}
			delete(r.entries, e.key)
			r.lru.Remove(el)
			r.count(mRegistryEvicts)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// List returns the resident entries, most recently used first.
func (r *Registry) List() []DetectorInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DetectorInfo, 0, len(r.entries))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		info := DetectorInfo{Key: e.key, State: "loading", Source: e.source}
		select {
		case <-e.ready:
			if e.err == nil {
				info.State = "ready"
				info.TrainedOn = e.det.TrainedOn
			}
		default:
		}
		out = append(out, info)
	}
	return out
}

// DiskKeys lists the model keys available in the registry dir (sorted),
// whether or not they are resident. Used by the listing endpoint so a
// warm-startable model is discoverable before its first request.
func (r *Registry) DiskKeys() []string {
	if r.cfg.Dir == "" {
		return nil
	}
	glob, err := filepath.Glob(filepath.Join(r.cfg.Dir, "*.json"))
	if err != nil {
		return nil
	}
	keys := make([]string, 0, len(glob))
	for _, path := range glob {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		// Reverse the ':' -> '-' mangling for the known key families.
		if rest, ok := strings.CutPrefix(name, "sha256-"); ok {
			keys = append(keys, "sha256:"+rest)
		} else if rest, ok := strings.CutPrefix(name, "train-"); ok {
			keys = append(keys, "train:"+rest)
		} else if rest, ok := strings.CutPrefix(name, "ensemble-"); ok {
			keys = append(keys, "ensemble:"+rest)
		}
	}
	sort.Strings(keys)
	return keys
}
