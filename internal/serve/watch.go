package serve

// GET /v1/watch — the live monitoring endpoint. It runs the seeded
// phased demo workload on a fresh simulated machine and streams the
// online detection engine's events (window verdicts, phase changes,
// drift alarms, the closing summary) as Server-Sent Events. The
// endpoint is admission-controlled like the other heavy endpoints
// (429 + Retry-After once the watch limiter saturates) and drains on
// shutdown: an in-flight session is cancelled at the next slice
// boundary, the engine emits its done event marked truncated, and the
// handler exits only after that event reached the client.
//
// Backpressure lives in the stream subscription: the handler consumes a
// bounded drop-oldest ring, so a slow SSE reader loses window events
// (counted in fsml_stream_windows_dropped_total) instead of stalling
// the simulation or growing a queue.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"fsml/internal/core"
	"fsml/internal/faults"
	"fsml/internal/stream"
)

// WatchQuery is the query-parameter surface of GET /v1/watch, shared by
// the server's parser and the client's Watch call.
type WatchQuery struct {
	// Spec is the window spec, "size[:stride[:hysteresis]]" ("" = the
	// stream default, 8:8:3).
	Spec string
	// Program is the workload to monitor. Only the built-in phased demo
	// ("phases-demo") is servable; "" selects it.
	Program string
	// Detector is the registry key to classify with ("" = server
	// default).
	Detector string
	// Seed drives the session's machine and PMU (default 1).
	Seed uint64
	// Threads and Iters shape the demo workload: worker threads
	// (default 6) and per-phase iterations per thread (default 20000).
	Threads int
	Iters   int
	// SliceRounds is the scheduler-round length of one slice sample
	// (default 500).
	SliceRounds int
	// Buf is the SSE subscription's ring depth (default 64).
	Buf int
	// NoDrift disables drift alarms (they default on, against an
	// envelope derived from the detector's tree).
	NoDrift bool
}

// watchLimits bound the attacker-controlled session parameters. The
// window spec has its own bounds in stream.ParseWindowSpec.
const (
	maxWatchThreads = 64
	maxWatchIters   = 1 << 22
	maxWatchSlice   = 1 << 20
	maxWatchBuf     = 1 << 12
)

// values reads the query back into URL parameters (client side).
func (q WatchQuery) values() url.Values {
	v := url.Values{}
	set := func(k, s string) {
		if s != "" {
			v.Set(k, s)
		}
	}
	set("spec", q.Spec)
	set("program", q.Program)
	set("detector", q.Detector)
	if q.Seed != 0 {
		v.Set("seed", strconv.FormatUint(q.Seed, 10))
	}
	setInt := func(k string, n int) {
		if n != 0 {
			v.Set(k, strconv.Itoa(n))
		}
	}
	setInt("threads", q.Threads)
	setInt("iters", q.Iters)
	setInt("slice_rounds", q.SliceRounds)
	setInt("buf", q.Buf)
	if q.NoDrift {
		v.Set("drift", "0")
	}
	return v
}

// parseWatchQuery decodes and bounds the session parameters. Every
// rejection is a 400-mapped badRequestError naming the parameter.
func parseWatchQuery(v url.Values) (WatchQuery, error) {
	q := WatchQuery{
		Program:     v.Get("program"),
		Spec:        v.Get("spec"),
		Detector:    v.Get("detector"),
		Seed:        1,
		Threads:     6,
		Iters:       20000,
		SliceRounds: 500,
		Buf:         64,
	}
	if q.Program == "" {
		q.Program = stream.DemoProgram
	}
	if q.Program != stream.DemoProgram {
		return q, badRequestf("watch: unknown program %q (only %q streams)", q.Program, stream.DemoProgram)
	}
	if s := v.Get("seed"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return q, badRequestf("watch: seed %q: not a decimal number", s)
		}
		q.Seed = n
	}
	intParam := func(name string, dst *int, min, max int) error {
		s := v.Get(name)
		if s == "" {
			return nil
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < min || n > max {
			return badRequestf("watch: %s %q: want an integer in [%d, %d]", name, s, min, max)
		}
		*dst = n
		return nil
	}
	if err := intParam("threads", &q.Threads, 1, maxWatchThreads); err != nil {
		return q, err
	}
	if err := intParam("iters", &q.Iters, 1, maxWatchIters); err != nil {
		return q, err
	}
	if err := intParam("slice_rounds", &q.SliceRounds, 1, maxWatchSlice); err != nil {
		return q, err
	}
	if err := intParam("buf", &q.Buf, 1, maxWatchBuf); err != nil {
		return q, err
	}
	switch v.Get("drift") {
	case "", "1", "true":
	case "0", "false":
		q.NoDrift = true
	default:
		return q, badRequestf("watch: drift %q: want 0 or 1", v.Get("drift"))
	}
	return q, nil
}

// handleWatch streams one monitoring session as SSE.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add(mReqWatch, 1)
	q, err := parseWatchQuery(r.URL.Query())
	if err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := stream.ParseWindowSpec(q.Spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, fmt.Errorf("watch: response writer cannot stream"))
		return
	}
	det, _, err := s.detector(r.Context(), q.Detector)
	if err != nil {
		s.writeError(w, err)
		return
	}

	col := core.NewCollector()
	col.Parallelism = s.cfg.Parallelism
	if s.cfg.Faults.Enabled() {
		col.Faults = faults.New(s.cfg.Faults)
	}
	var env *stream.Envelope
	if !q.NoDrift && det.Tree != nil {
		env = stream.EnvelopeFromTree(det.Tree, 0)
	}
	mc := stream.MonitorConfig{
		Spec:        spec,
		SliceRounds: q.SliceRounds,
		Seed:        q.Seed,
		Envelope:    env,
		Counters:    s.metrics,
	}
	if s.lc != nil {
		// Feed the lifecycle's drift debouncer losslessly: OnEvent runs
		// on the session goroutine in canonical order, so the loop sees
		// every alarm and clear even when SSE subscribers drop events.
		mc.OnEvent = s.lc.ObserveStream
	}
	mon, err := stream.NewMonitor(col, det, mc)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sub, err := mon.Subscribe(q.Buf)
	if err != nil {
		s.writeError(w, err)
		return
	}

	// The session ends when the workload finishes, the client goes away,
	// or the server begins shutting down — whichever comes first. The
	// last two truncate: the engine still emits its done event, and the
	// loop below delivers it before the handler (and the drain) completes.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.watchStop:
			cancel()
		case <-ctx.Done():
		}
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	runErr := make(chan error, 1)
	go func() {
		_, err := mon.Run(ctx, stream.PhasedKernels(q.Threads, q.Iters))
		runErr <- err
	}()
	clientGone := false
	for ev := range sub.Events() {
		if clientGone {
			continue // drain so the channel close is observed
		}
		if err := writeSSE(w, flusher, ev); err != nil {
			// The client hung up mid-stream: stop the session and keep
			// draining the subscription until Run closes it.
			cancel()
			clientGone = true
		}
	}
	if err := <-runErr; err != nil && !clientGone {
		// The pipeline failed mid-stream; the 200 header is long gone,
		// so the error travels as a terminal SSE event.
		blob, _ := json.Marshal(ErrorResponse{Error: err.Error()})
		fmt.Fprintf(w, "event: error\ndata: %s\n\n", blob)
		flusher.Flush()
	}
}

// writeSSE renders one stream event in the text/event-stream framing:
// the engine sequence number as the event id, the kind as the event
// name, the JSON payload as data.
func writeSSE(w io.Writer, f http.Flusher, ev stream.Event) error {
	blob, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, blob); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// ---------------------------------------------------------------------------
// Client side

// Watch opens a live monitoring session and invokes fn for every event
// the server delivers, in order, until the stream ends; it returns the
// closing summary. A non-nil error from fn aborts the session (the
// connection closes, which cancels it server-side). Connection attempts
// honor the client's retry policy the way GETs do — a shed (429) or
// shutting-down (503) rejection backs off and redials — but once events
// start flowing there are no retries: a resumed session would replay
// from the start and double-deliver.
func (c *Client) Watch(ctx context.Context, q WatchQuery, fn func(stream.Event) error) (*stream.Summary, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resp, err := c.dialWatch(ctx, q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var summary *stream.Summary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes)
	var kind string
	var data strings.Builder
	flush := func() error {
		defer func() { kind = ""; data.Reset() }()
		if data.Len() == 0 {
			return nil
		}
		if kind == "error" {
			var e ErrorResponse
			if json.Unmarshal([]byte(data.String()), &e) == nil && e.Error != "" {
				return fmt.Errorf("serve: watch stream failed: %s", e.Error)
			}
			return fmt.Errorf("serve: watch stream failed: %s", data.String())
		}
		var ev stream.Event
		if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
			return fmt.Errorf("serve: decoding watch event: %w", err)
		}
		if ev.Kind == stream.KindDone {
			summary = ev.Summary
		}
		if fn != nil {
			return fn(ev)
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return summary, err
			}
		case strings.HasPrefix(line, "event:"):
			kind = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := flush(); err != nil {
		return summary, err
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		return summary, err
	}
	if summary == nil {
		return nil, fmt.Errorf("serve: watch stream ended without a done event")
	}
	return summary, nil
}

// dialWatch opens the SSE response, retrying not-processed rejections
// per the client's policy.
func (c *Client) dialWatch(ctx context.Context, q WatchQuery) (*http.Response, error) {
	path := "/v1/watch"
	if enc := q.values().Encode(); enc != "" {
		path += "?" + enc
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	for attempt := 0; ; attempt++ {
		target, err := c.endpoint(path)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err := hc.Do(req)
		if err == nil && resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		if err == nil {
			blob, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
			resp.Body.Close()
			apiErr := &APIError{Status: resp.StatusCode, RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())}
			var e ErrorResponse
			if json.Unmarshal(blob, &e) == nil && e.Error != "" {
				apiErr.Message = e.Error
			} else {
				apiErr.Message = strings.TrimSpace(string(blob))
			}
			err = apiErr
		}
		ok, hint := retryable(http.MethodGet, err)
		if !ok || attempt >= c.Retry.Max {
			return nil, err
		}
		delay := c.Retry.Backoff.Delay(attempt)
		if hint > delay {
			delay = hint
		}
		if serr := c.Retry.sleep(ctx, delay); serr != nil {
			return nil, serr
		}
	}
}
