package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"fsml/internal/core"
)

// variantDetector derives a content-distinct copy of base (TrainedOn is
// part of the canonical encoding, so each n lands on its own key).
func variantDetector(base *core.Detector, n int) *core.Detector {
	return &core.Detector{Tree: base.Tree, Model: base.Model, TrainedOn: map[string]int{"good": n}}
}

// TestActivePointerPinsAgainstEviction promotes a version, then floods
// the registry far past capacity and asserts the active key and its
// retained rollback target both survive while unpinned keys are
// evicted. Without the pin, cache pressure could silently evict the one
// model the authoritative serving path depends on — content keys cannot
// be retrained, so the next default classify would 404.
func TestActivePointerPinsAgainstEviction(t *testing.T) {
	m := NewMetrics()
	reg := NewRegistry(RegistryConfig{Capacity: 2, Metrics: m})
	base := tinyDetector(t)

	prevKey, _, err := reg.Register(variantDetector(base, 1001))
	if err != nil {
		t.Fatal(err)
	}
	activeKey, _, err := reg.Register(variantDetector(base, 1002))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SetActive("default", activeKey, prevKey, 1); err != nil {
		t.Fatal(err)
	}

	// Flood with distinct content keys; each registration runs eviction.
	var flood []string
	for i := 0; i < 16; i++ {
		key, _, err := reg.Register(variantDetector(base, i+1))
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, key)
	}
	if evicts := m.Counter(mRegistryEvicts); evicts == 0 {
		t.Fatal("no evictions under a 16-key flood at capacity 2; the test exerted no pressure")
	}

	resident := map[string]bool{}
	for _, info := range reg.List() {
		resident[info.Key] = true
	}
	if !resident[activeKey] {
		t.Errorf("active key %s was evicted under pressure", activeKey)
	}
	if !resident[prevKey] {
		t.Errorf("retained previous key %s was evicted under pressure", prevKey)
	}
	evictedSome := false
	for _, key := range flood {
		if !resident[key] {
			evictedSome = true
			break
		}
	}
	if !evictedSome {
		t.Error("no flood key was evicted; capacity bound not enforced")
	}

	// The pinned versions must still be servable, as cache hits.
	for _, key := range []string{activeKey, prevKey} {
		if _, hit, err := reg.Get(context.Background(), key); err != nil || !hit {
			t.Errorf("Get(%s) after flood: hit=%t err=%v, want resident hit", key, hit, err)
		}
	}

	// Clearing the pointer unpins: the old versions become evictable.
	if err := reg.ClearActive("default"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, _, err := reg.Register(variantDetector(base, 2000+i)); err != nil {
			t.Fatal(err)
		}
	}
	resident = map[string]bool{}
	for _, info := range reg.List() {
		resident[info.Key] = true
	}
	if resident[activeKey] || resident[prevKey] {
		t.Errorf("cleared pointer keys still resident after flood (active=%t previous=%t), want both evictable", resident[activeKey], resident[prevKey])
	}
}

// TestActivePointerPersistsAcrossRestart promotes in one registry and
// reopens the dir in a second: the pointer must survive (that is the
// whole point of persisting it) and the promoted model must warm-start.
func TestActivePointerPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	base := tinyDetector(t)

	reg1 := NewRegistry(RegistryConfig{Dir: dir})
	key, _, err := reg1.Register(variantDetector(base, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg1.SetActive("default", key, "train:quick=true,seed=1", 3); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry(RegistryConfig{Dir: dir})
	gotKey, gotPrev, gotVer, ok := reg2.Active("default")
	if !ok || gotKey != key || gotPrev != "train:quick=true,seed=1" || gotVer != 3 {
		t.Fatalf("Active after restart = (%s, %s, %d, %t), want (%s, train:quick=true,seed=1, 3, true)", gotKey, gotPrev, gotVer, ok, key)
	}
	if det, err := reg2.Resolve(key); err != nil || det == nil {
		t.Fatalf("Resolve(%s) after restart: %v", key, err)
	}
	// active.json must not leak into the disk key listing.
	for _, k := range reg2.DiskKeys() {
		if k == "active" || k == activeFileName {
			t.Errorf("DiskKeys lists the pointer file: %v", reg2.DiskKeys())
		}
	}
}

// TestActivePointerCorruptFileQuarantined writes garbage where the
// pointer file should be: the registry must start empty-pointered (a
// lost promotion, never a crash or a wrong answer) and move the bad
// file aside for post-mortem.
func TestActivePointerCorruptFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, activeFileName)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	reg := NewRegistry(RegistryConfig{Dir: dir, Metrics: m})
	if _, _, _, ok := reg.Active("default"); ok {
		t.Error("Active = ok on a corrupt pointer file, want empty")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt pointer file not quarantined: %v", err)
	}
	if m.Counter(mQuarantined) != 1 {
		t.Errorf("quarantine counter = %d, want 1", m.Counter(mQuarantined))
	}
}
