package serve

// Tests of the live monitoring endpoint: the SSE wire contract, the
// admission/shed behavior under load, and the shutdown drain. The serve
// package is part of the race leg, so these also run under -race.

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"fsml/internal/stream"
)

// TestWatchStreamsDemoPhases runs one complete session through the SSE
// endpoint and checks the event stream's structural contract: ordered
// sequence numbers, valid kinds, exactly one terminal done event whose
// summary matches the events delivered, and the stream metrics moving.
func TestWatchStreamsDemoPhases(t *testing.T) {
	s, c := newTestServer(t, Config{})
	var events []stream.Event
	sum, err := c.Watch(context.Background(), WatchQuery{
		Spec:  "4:4:3",
		Seed:  5,
		Iters: 4000,
		Buf:   4096, // lossless: the buffer exceeds any possible event count
	}, func(ev stream.Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events delivered")
	}
	windows := 0
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: stream reordered or lossy despite the huge buffer", i, ev.Seq)
		}
		switch ev.Kind {
		case stream.KindWindow:
			windows++
			if ev.Window == nil {
				t.Fatalf("window event %d has no payload", i)
			}
		case stream.KindPhase, stream.KindDrift:
		case stream.KindDone:
			if i != len(events)-1 {
				t.Fatalf("done event at %d of %d: not terminal", i, len(events))
			}
		default:
			t.Fatalf("event %d has unknown kind %q", i, ev.Kind)
		}
	}
	if sum == nil {
		t.Fatal("no summary returned")
	}
	if sum.Truncated {
		t.Error("complete run reported truncated")
	}
	if sum.Windows != windows {
		t.Errorf("summary says %d windows, stream delivered %d", sum.Windows, windows)
	}
	if sum.Classified == 0 {
		t.Error("no window was classified")
	}
	m := s.Metrics()
	if m.Counter(stream.MetricSessionsStarted) != 1 || m.Counter(stream.MetricSessionsClosed) != 1 {
		t.Errorf("session counters = %d started / %d closed, want 1/1",
			m.Counter(stream.MetricSessionsStarted), m.Counter(stream.MetricSessionsClosed))
	}
	if got := m.Counter(stream.MetricWindowsClassified); got != uint64(sum.Classified) {
		t.Errorf("windows-classified counter = %d, want %d", got, sum.Classified)
	}
}

// TestWatchRejectsBadQueries pins the 400 surface: malformed window
// specs (typed *stream.SpecError) and out-of-bounds session parameters.
func TestWatchRejectsBadQueries(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for _, q := range []WatchQuery{
		{Spec: "0"},
		{Spec: "8:9"},
		{Spec: "8:4:0"},
		{Program: "no-such-program"},
		{Threads: maxWatchThreads + 1},
		{Buf: -1},
	} {
		_, err := c.Watch(context.Background(), q, nil)
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.Status != http.StatusBadRequest {
			t.Errorf("query %+v: err = %v, want a 400 APIError", q, err)
		}
	}
}

// watchDial opens a raw SSE request and returns once the first event
// line has arrived — proof the session is admitted and streaming.
func watchDial(t *testing.T, base, query string) (*http.Response, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/watch?"+query, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("watch dial: status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			resp.Body.Close()
			cancel()
			t.Fatalf("waiting for first event: %v", err)
		}
		if strings.HasPrefix(line, "data:") {
			return resp, cancel
		}
	}
}

// longSession is a query whose workload cannot finish within the test:
// shed and drain behavior must be observed mid-stream.
const longSession = "iters=4000000&slice_rounds=500"

// TestWatchShedUnderLoad saturates the watch limiter with one admitted
// session and asserts the next is shed with 429 + Retry-After — and
// that closing the first session frees the slot.
func TestWatchShedUnderLoad(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInflight: 1, ShedAfter: -1})
	hs := "http://" + strings.TrimPrefix(c.BaseURL, "http://")
	resp, cancel := watchDial(t, hs, longSession)
	defer resp.Body.Close()
	defer cancel()

	shed, err := http.Get(hs + "/v1/watch?" + longSession)
	if err != nil {
		t.Fatal(err)
	}
	shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session status = %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("shed response carries no Retry-After hint")
	}
	if got := s.Metrics().Counter(mShedWatch); got != 1 {
		t.Errorf("%s = %d, want 1", mShedWatch, got)
	}

	// Hang up the admitted session; the slot must come back.
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for s.limWatch.Inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("watch slot not released after client hangup")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchShutdownDrains proves the drain contract: a mid-stream
// session is truncated by Shutdown — the client still receives the
// terminal done event, marked truncated — while late sessions are
// rejected at the gate with 503, and Shutdown itself returns within its
// deadline.
func TestWatchShutdownDrains(t *testing.T) {
	s, c := newTestServer(t, Config{})
	started := make(chan struct{})
	type result struct {
		sum *stream.Summary
		err error
	}
	got := make(chan result, 1)
	go func() {
		first := true
		sum, err := c.Watch(context.Background(), WatchQuery{Iters: 4000000}, func(ev stream.Event) error {
			if first {
				first = false
				close(started)
			}
			return nil
		})
		got <- result{sum, err}
	}()
	<-started

	ctx, cancelShut := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancelShut()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown overran its deadline: %v", err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("truncated session should still end cleanly, got %v", r.err)
		}
		if r.sum == nil || !r.sum.Truncated {
			t.Fatalf("summary = %+v, want a truncated one", r.sum)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client never received the done event after shutdown")
	}

	// Late arrivals are rejected at the admission gate, never queued.
	resp, err := http.Get(c.BaseURL + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown watch status = %d, want 503", resp.StatusCode)
	}
}
