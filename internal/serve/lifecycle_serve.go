package serve

// Wiring between the HTTP serving layer and the self-healing model
// lifecycle (internal/lifecycle). The server owns the manager: it seeds
// the registry's active-version pointer with the configured default
// detector, feeds watch-session stream events into the drift debouncer,
// mirrors every authoritative classification into the shadow scorer,
// and exposes the loop on GET /v1/lifecycle and /readyz.

import (
	"net/http"
	"path/filepath"
	"strconv"

	"fsml/internal/lifecycle"
	"fsml/internal/machine"
	"fsml/internal/pmu"
)

// mLifecycleFallback counts default-detector requests that could not be
// served by the active version (its key failed to resolve) and fell
// back to the configured default. Nonzero means the pointer references
// a model the registry cannot load — worth an operator's look.
const mLifecycleFallback = "fsml_lifecycle_active_fallback_total"

// initLifecycle builds the manager from cfg.Lifecycle, filling the
// server-owned fields the embedder left zero. A manager that cannot be
// built disables the loop but never the server: the error is kept and
// surfaced on /v1/lifecycle.
func (s *Server) initLifecycle() {
	lcfg := *s.cfg.Lifecycle
	if lcfg.Name == "" {
		lcfg.Name = "default"
	}
	lcfg.Registry = s.reg
	if lcfg.Counters == nil {
		lcfg.Counters = s.metrics
	}
	if lcfg.HistoryDir == "" && s.cfg.RegistryDir != "" {
		lcfg.HistoryDir = filepath.Join(s.cfg.RegistryDir, "history")
	}
	if lcfg.Parallelism == 0 {
		lcfg.Parallelism = s.cfg.Parallelism
	}
	// Seed the active pointer so the loop always has an incumbent with
	// a registry key: version 1 is the configured default detector. A
	// pointer warm-started from disk (a previous promotion) wins.
	if _, _, _, ok := s.reg.Active(lcfg.Name); !ok {
		if err := s.reg.SetActive(lcfg.Name, s.cfg.DefaultDetector, "", 1); err != nil {
			s.lcErr = err
			return
		}
	}
	m, err := lifecycle.New(lcfg)
	if err != nil {
		s.lcErr = err
		return
	}
	s.lc = m
}

// Lifecycle exposes the manager (nil when the loop is disabled).
func (s *Server) Lifecycle() *lifecycle.Manager { return s.lc }

// mirror forwards one authoritative verdict to the shadow scorer. A
// disabled or idle loop costs one nil check / one atomic load on the
// classify hot path.
func (s *Server) mirror(key, class string, confidence float64, sample pmu.Sample, kernels []machine.Kernel) {
	if s.lc != nil {
		s.lc.Mirror(key, class, confidence, sample, kernels)
	}
}

// activeDetectorKey resolves the default-detector key through the
// lifecycle's active-version pointer when the loop is enabled.
func (s *Server) activeDetectorKey() string {
	if s.lc == nil {
		return s.cfg.DefaultDetector
	}
	if key, _, _, ok := s.reg.Active(s.lc.Name()); ok && key != "" {
		return key
	}
	return s.cfg.DefaultDetector
}

// handleLifecycle renders the loop's status and run history.
// ?limit=N bounds the history (default 16, 0 = all retained).
func (s *Server) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	if s.lc == nil {
		resp := LifecycleResponse{Enabled: false}
		if s.lcErr != nil {
			resp.Error = s.lcErr.Error()
		}
		writeJSON(w, resp)
		return
	}
	limit := 16
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, badRequestf("lifecycle: bad limit %q", v))
			return
		}
		limit = n
	}
	st := s.lc.Status()
	writeJSON(w, LifecycleResponse{
		Enabled: true,
		Status:  &st,
		History: s.lc.History(limit),
	})
}
