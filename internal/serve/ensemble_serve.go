package serve

// The ensemble side of the serving layer. Multi-pathology ensembles get
// their own key family ("ensemble:quick=...,seed=...") and their own
// small registry: they are few, expensive to train, and decode to a
// different type than core detectors, so sharing the LRU would buy
// nothing but type assertions. Classify requests opt in per request with
// ?ensemble=1 and get the ranked pathologies back in the response.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fsml/internal/core"
	"fsml/internal/ensemble"
	"fsml/internal/exps"
	"fsml/internal/pmu"
)

// EnsembleSpec identifies a lazily trainable ensemble: the collection
// options that matter for the resulting model. Its Key is canonical.
type EnsembleSpec struct {
	// Quick selects the reduced widened grids.
	Quick bool
	// Seed drives collection and bagging determinism (0 means 1).
	Seed uint64
}

// Key returns the canonical registry key of the spec.
func (s EnsembleSpec) Key() string {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return fmt.Sprintf("ensemble:quick=%t,seed=%d", s.Quick, seed)
}

// parseEnsembleKey parses an "ensemble:quick=...,seed=..." registry key.
func parseEnsembleKey(key string) (EnsembleSpec, bool) {
	rest, ok := strings.CutPrefix(key, "ensemble:")
	if !ok {
		return EnsembleSpec{}, false
	}
	spec := EnsembleSpec{}
	for _, part := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return EnsembleSpec{}, false
		}
		switch k {
		case "quick":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return EnsembleSpec{}, false
			}
			spec.Quick = b
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return EnsembleSpec{}, false
			}
			spec.Seed = n
		default:
			return EnsembleSpec{}, false
		}
	}
	return spec, true
}

// ensembleEntry is one slot; ready closes once det/err are final.
type ensembleEntry struct {
	source string
	ready  chan struct{}
	det    *ensemble.Detector
	err    error
}

// ensembleRegistry caches trained ensembles by spec key, with
// singleflight lazy training and the same crash-safe disk side as the
// detector registry (same dir, "ensemble-" file prefix). No LRU: a
// server realistically holds a handful of ensembles, and evicting one
// would re-trigger full widened-grid training.
type ensembleRegistry struct {
	dir     string
	train   func(spec EnsembleSpec) (*ensemble.Detector, error)
	metrics *Metrics

	mu      sync.Mutex
	entries map[string]*ensembleEntry
}

// newEnsembleRegistry wires the lazy trainer (cfg.TrainEnsemble override
// for tests, else the exps.Lab base + widened-grid pipeline).
func newEnsembleRegistry(dir string, parallelism int, train func(spec EnsembleSpec) (*ensemble.Detector, error), m *Metrics) *ensembleRegistry {
	if train == nil {
		train = func(spec EnsembleSpec) (*ensemble.Detector, error) {
			seed := spec.Seed
			if seed == 0 {
				seed = 1
			}
			lab := &exps.Lab{Quick: spec.Quick, Seed: seed, Parallelism: parallelism}
			base, err := lab.Detector()
			if err != nil {
				return nil, err
			}
			cfg := ensemble.TrainConfig{Quick: spec.Quick, Seed: seed, Parallelism: parallelism}
			return ensemble.TrainContext(context.Background(), cfg, base)
		}
	}
	return &ensembleRegistry{dir: dir, train: train, metrics: m, entries: map[string]*ensembleEntry{}}
}

func (r *ensembleRegistry) count(name string) {
	if r.metrics != nil {
		r.metrics.Add(name, 1)
	}
}

// fileFor maps a key to its model file ("ensemble:..." -> "ensemble-...").
func (r *ensembleRegistry) fileFor(key string) string {
	return filepath.Join(r.dir, strings.ReplaceAll(key, ":", "-")+".json")
}

// Get returns the ensemble for key, loading or training it on first use
// (singleflight, like the detector registry).
func (r *ensembleRegistry) Get(ctx context.Context, key string) (*ensemble.Detector, error) {
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.mu.Unlock()
		r.count(mRegistryHits)
		select {
		case <-e.ready:
			return e.det, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &ensembleEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()
	r.count(mRegistryMisses)

	det, source, err := r.load(key)
	r.mu.Lock()
	e.det, e.source, e.err = det, source, err
	close(e.ready)
	if err != nil {
		if r.entries[key] == e {
			delete(r.entries, key)
		}
	}
	r.mu.Unlock()
	return det, err
}

// load resolves a missing key: disk warm start first (corrupt files
// quarantined, then retrained), then lazy training.
func (r *ensembleRegistry) load(key string) (*ensemble.Detector, string, error) {
	spec, isSpec := parseEnsembleKey(key)
	if !isSpec {
		return nil, "", &UnknownDetectorError{Key: key}
	}
	if r.dir != "" {
		path := r.fileFor(key)
		blob, err := os.ReadFile(path)
		switch {
		case err == nil:
			det, derr := ensemble.Decode(blob)
			if derr == nil {
				return det, "disk", nil
			}
			if qerr := os.Rename(path, quarantinePath(path)); qerr != nil {
				return nil, "", fmt.Errorf("serve: ensemble warm start from %s: %w (quarantine failed: %v)", path, derr, qerr)
			}
			r.count(mQuarantined)
			// Retrain below as if the file never existed.
		case !errors.Is(err, fs.ErrNotExist):
			return nil, "", fmt.Errorf("serve: ensemble warm start reading %s: %w", path, err)
		}
	}
	det, err := r.train(spec)
	if err != nil {
		return nil, "", fmt.Errorf("serve: training %s: %w", key, err)
	}
	r.persist(key, det)
	return det, "trained", nil
}

// persist writes the model file crash-safe; best effort like the
// detector registry.
func (r *ensembleRegistry) persist(key string, det *ensemble.Detector) {
	if r.dir == "" {
		return
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return
	}
	_ = det.SaveFile(r.fileFor(key))
}

// List returns resident ensemble entries for the detector listing,
// sorted by key.
func (r *ensembleRegistry) List() []DetectorInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DetectorInfo, 0, len(r.entries))
	for key, e := range r.entries {
		info := DetectorInfo{Key: key, State: "loading", Source: e.source}
		select {
		case <-e.ready:
			if e.err == nil {
				info.State = "ready"
			}
		default:
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ---------------------------------------------------------------------------
// Request plumbing

// ensembleRequested reports whether a classify request opted into the
// multi-pathology ensemble via ?ensemble=1 (any true-ish boolean works).
func ensembleRequested(q string) bool {
	if q == "" {
		return false
	}
	b, err := strconv.ParseBool(q)
	return err == nil && b
}

// ensembleDetector resolves a request's ensemble key. An empty key means
// the default quick spec with the default seed; a non-ensemble key is a
// client error — the two key families do not decode into each other.
func (s *Server) ensembleDetector(ctx context.Context, key string) (*ensemble.Detector, string, error) {
	if key == "" {
		key = EnsembleSpec{Quick: true, Seed: 1}.Key()
	}
	if _, ok := parseEnsembleKey(key); !ok {
		return nil, key, badRequestf("classify: %q is not an ensemble key (want ensemble:quick=...,seed=...)", key)
	}
	det, err := s.ens.Get(ctx, key)
	if err != nil {
		return nil, key, err
	}
	return det, key, nil
}

// verdictor abstracts "whatever classifies this sample": the single
// detector or the ensemble. Exactly one field is set.
type verdictor struct {
	det *core.Detector
	ens *ensemble.Detector
}

// attrs returns the classifier's expected event list (for vector
// requests that name no events).
func (v verdictor) attrs() []string {
	switch {
	case v.ens != nil:
		return v.ens.Attrs
	case v.det != nil && v.det.Tree != nil:
		return v.det.Tree.Attrs
	default:
		return pmu.FeatureNames()
	}
}

// classify runs the sample through whichever classifier is set. The
// ranked pathologies are non-nil only on the ensemble path.
func (v verdictor) classify(s pmu.Sample) (core.RobustResult, []ensemble.PathologyScore, error) {
	if v.ens != nil {
		res, err := v.ens.ClassifyRobust(s)
		if err != nil {
			return core.RobustResult{}, nil, err
		}
		rr := core.RobustResult{Class: res.Class, Confidence: res.Confidence, Degraded: res.Degraded, Suspects: res.Suspects}
		return rr, res.Pathologies, nil
	}
	rr, err := v.det.ClassifyRobust(s)
	return rr, nil, err
}
