package stream

// Monitor binds the pure Engine to a live workload: it runs kernels on
// a freshly built machine in bounded scheduler slices (the pattern of
// core.DetectSliced), reads and resets the PMU at every slice boundary,
// feeds the slice samples to the engine, and fans the resulting event
// stream out to subscribers. The engine side stays strictly synchronous
// — the canonical event sequence is a pure function of (collector
// config, seed, window spec, kernels) — so determinism survives any
// number of concurrent sessions. Backpressure exists only at the
// subscription boundary: each subscriber owns a bounded ring where the
// oldest undelivered event is dropped (and counted) when the consumer
// falls behind. A slow SSE client can therefore lose events, never
// stall the session or bloat memory, and always knows how much it lost.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"fsml/internal/core"
	"fsml/internal/machine"
	"fsml/internal/pmu"
)

// Stream metric names, registered on whatever CounterSink the session
// is given (the serving layer passes its /metrics registry).
const (
	MetricSessionsStarted   = "fsml_stream_sessions_started_total"
	MetricSessionsClosed    = "fsml_stream_sessions_closed_total"
	MetricWindowsClassified = "fsml_stream_windows_classified_total"
	MetricWindowsDropped    = "fsml_stream_windows_dropped_total"
	MetricPhaseTransitions  = "fsml_stream_phase_transitions_total"
	MetricDriftAlarms       = "fsml_stream_drift_alarms_total"
	MetricDriftCleared      = "fsml_stream_drift_cleared_total"
)

// CounterSink receives stream-layer counter increments. *serve.Metrics
// satisfies it; a nil sink disables counting.
type CounterSink interface {
	Add(name string, delta uint64)
}

// MonitorConfig shapes one monitoring session. Platform configuration
// (machine template, PMU model, event set, fault injection) comes from
// the Collector the monitor is built with, exactly as for batch
// detection.
type MonitorConfig struct {
	// Spec is the window geometry (zero value: DefaultWindowSpec).
	Spec WindowSpec
	// SliceRounds is the scheduler-round length of one slice sample
	// (default 500, matching the sliced-detection examples).
	SliceRounds int
	// Seed drives the session's machine and PMU.
	Seed uint64
	// Envelope, when non-nil, enables drift alarms.
	Envelope *Envelope
	// MinInstructions is the per-window classification guard (see
	// EngineConfig).
	MinInstructions float64
	// Counters, when non-nil, receives the stream metrics above.
	Counters CounterSink
	// OnEvent, when non-nil, observes every event synchronously in
	// canonical order, before any subscriber sees it. It is the lossless
	// consumer (the CLI, the golden test); keep it fast — it runs on the
	// session goroutine.
	OnEvent func(Event)
}

// Monitor is one streaming detection session. Build it, attach
// subscriptions, then Run it exactly once.
type Monitor struct {
	col *core.Collector
	det *core.Detector
	cfg MonitorConfig

	mu   sync.Mutex
	subs []*Subscription
	ran  bool
}

// NewMonitor builds a session. A nil collector uses core.NewCollector's
// paper-default platform. The window spec is validated here so a bad
// session fails before any simulation.
func NewMonitor(col *core.Collector, det *core.Detector, cfg MonitorConfig) (*Monitor, error) {
	if det == nil {
		return nil, fmt.Errorf("stream: nil detector")
	}
	if col == nil {
		col = core.NewCollector()
	}
	if (cfg.Spec == WindowSpec{}) {
		cfg.Spec = DefaultWindowSpec()
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.SliceRounds <= 0 {
		cfg.SliceRounds = 500
	}
	return &Monitor{col: col, det: det, cfg: cfg}, nil
}

// Subscription is one bounded, drop-oldest event feed.
type Subscription struct {
	ch      chan Event
	dropped atomic.Uint64
}

// Events is the feed channel. It is closed when the session ends.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped returns how many events backpressure discarded on this feed.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// push delivers one event, discarding the oldest buffered event when
// the ring is full. It returns the number of events dropped to make
// room. Only the session goroutine calls push, so the steal below never
// races another producer; a concurrent consumer receive just means the
// retry send succeeds.
func (s *Subscription) push(ev Event) uint64 {
	var dropped uint64
	for {
		select {
		case s.ch <- ev:
			s.dropped.Add(dropped)
			return dropped
		default:
		}
		select {
		case <-s.ch:
			dropped++
		default:
		}
	}
}

// Subscribe attaches a feed with the given buffer depth (minimum 1)
// to a session that has not started. Subscribing after Run begins
// would make delivery start mid-stream, so it is rejected.
func (m *Monitor) Subscribe(buf int) (*Subscription, error) {
	if buf < 1 {
		buf = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ran {
		return nil, fmt.Errorf("stream: subscribe after Run")
	}
	s := &Subscription{ch: make(chan Event, buf)}
	m.subs = append(m.subs, s)
	return s, nil
}

// count increments a stream metric when a sink is attached.
func (m *Monitor) count(name string, delta uint64) {
	if m.cfg.Counters != nil && delta > 0 {
		m.cfg.Counters.Add(name, delta)
	}
}

// publish fans events out: OnEvent first (lossless, canonical order),
// then every subscription (lossy under backpressure), then metrics.
func (m *Monitor) publish(events []Event) {
	for _, ev := range events {
		if m.cfg.OnEvent != nil {
			m.cfg.OnEvent(ev)
		}
		var dropped uint64
		for _, s := range m.subs {
			dropped += s.push(ev)
		}
		m.count(MetricWindowsDropped, dropped)
		switch ev.Kind {
		case KindWindow:
			if ev.Window.Class != "" {
				m.count(MetricWindowsClassified, 1)
			}
		case KindPhase:
			m.count(MetricPhaseTransitions, 1)
		case KindDrift:
			m.count(MetricDriftAlarms, 1)
		case KindDriftClear:
			m.count(MetricDriftCleared, 1)
		}
	}
}

// Run executes the kernels on a fresh machine, streaming classification
// events until the workload finishes or ctx is cancelled (a cancelled
// session still emits its done event, marked Truncated). It returns the
// session summary. Run may be called once per Monitor.
func (m *Monitor) Run(ctx context.Context, kernels []machine.Kernel) (*Summary, error) {
	m.mu.Lock()
	if m.ran {
		m.mu.Unlock()
		return nil, fmt.Errorf("stream: Run called twice")
	}
	m.ran = true
	subs := m.subs
	m.mu.Unlock()

	defer func() {
		for _, s := range subs {
			close(s.ch)
		}
		m.count(MetricSessionsClosed, 1)
	}()
	m.count(MetricSessionsStarted, 1)

	eng, err := NewEngine(m.det, EngineConfig{
		Spec:            m.cfg.Spec,
		Envelope:        m.cfg.Envelope,
		MinInstructions: m.cfg.MinInstructions,
	})
	if err != nil {
		return nil, err
	}

	mcfg := m.col.Machine
	mcfg.Seed = m.cfg.Seed
	mcfg.Monitor = true
	mach := machine.New(mcfg)

	pcfg := m.col.PMU
	pcfg.Seed = m.cfg.Seed
	pcfg.Faults = m.col.Faults
	pcfg.CaseKey = fmt.Sprintf("stream/seed=%d", m.cfg.Seed)
	evs := m.col.Events
	if evs == nil {
		evs = pmu.Table2()
	}
	p := pmu.New(pcfg, evs)

	exec := mach.StartExecution(kernels)
	truncated := false
	for {
		if ctx.Err() != nil {
			truncated = true
			break
		}
		res, finished := exec.Run(m.cfg.SliceRounds)
		if res.Rounds == 0 && finished {
			break
		}
		events, err := eng.Push(p.Read(mach.Hierarchy()), mach.Seconds(res))
		if err != nil {
			return nil, &core.PipelineError{Stage: core.StageClassify, Case: pcfg.CaseKey, Err: err}
		}
		m.publish(events)
		// Reset the banks so the next slice sample is measured in
		// isolation — the engine's rolling sums do the window math.
		mach.Hierarchy().ResetCounters()
		if finished {
			break
		}
	}
	done, err := eng.Finish(truncated)
	if err != nil {
		return nil, err
	}
	m.publish(done)
	return done[len(done)-1].Summary, nil
}
