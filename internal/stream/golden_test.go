package stream

// The streaming determinism contract, pinned to bytes: the canonical
// event stream of a seeded phase workload is a pure function of
// (detector, seed, window spec, kernels). It must not change across
// collector parallelism settings (-j 1 vs -j 8), across how many
// sessions run concurrently, or across subscriber buffering configs —
// backpressure may drop events from a lossy feed, but never reorder or
// alter the canonical stream.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fsml/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

const goldenPath = "testdata/stream_phases.golden.json"

// goldenSession is the pinned session: a 4-thread good -> bad-fs ->
// good run, overlapping windows (stride < size), hysteresis 3, drift
// alarms against the tree-derived envelope.
func goldenSession(tb testing.TB, det *core.Detector, parallelism int, bufs []int) (canonical []byte, subs [][]Event) {
	tb.Helper()
	col := core.NewCollector()
	col.Parallelism = parallelism
	var buf bytes.Buffer
	mon, err := NewMonitor(col, det, MonitorConfig{
		Spec:        WindowSpec{Size: 4, Stride: 2, Hysteresis: 3},
		SliceRounds: 400,
		Seed:        7,
		Envelope:    EnvelopeFromTree(det.Tree, 0),
		OnEvent: func(ev Event) {
			blob, err := json.Marshal(ev)
			if err != nil {
				tb.Errorf("marshaling event: %v", err)
				return
			}
			buf.Write(blob)
			buf.WriteByte('\n')
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	subscriptions := make([]*Subscription, len(bufs))
	for i, b := range bufs {
		if subscriptions[i], err = mon.Subscribe(b); err != nil {
			tb.Fatal(err)
		}
	}
	if _, err := mon.Run(context.Background(), PhasedKernels(4, 8000)); err != nil {
		tb.Fatal(err)
	}
	subs = make([][]Event, len(bufs))
	for i, s := range subscriptions {
		for ev := range s.Events() {
			subs[i] = append(subs[i], ev)
		}
	}
	return buf.Bytes(), subs
}

// TestStreamGoldenPhases pins the canonical event stream byte-for-byte
// and proves it identical across parallelism, concurrent sessions, and
// buffering configurations.
func TestStreamGoldenPhases(t *testing.T) {
	det := realDetector(t)

	// The reference run: collector parallelism 1, one big lossless
	// subscriber and one tiny lossy one riding along.
	canonical, subs := goldenSession(t, det, 1, []int{1 << 12, 1})
	if len(canonical) == 0 {
		t.Fatal("empty canonical stream")
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, canonical, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(canonical, golden) {
		t.Errorf("canonical stream diverged from %s (run with -update if intended)\ngot %d bytes, want %d",
			goldenPath, len(canonical), len(golden))
	}

	// The lossless subscriber saw exactly the canonical stream; the
	// lossy one a strictly ordered subsequence ending in the done event.
	var rejoined bytes.Buffer
	for _, ev := range subs[0] {
		blob, _ := json.Marshal(ev)
		rejoined.Write(blob)
		rejoined.WriteByte('\n')
	}
	if !bytes.Equal(rejoined.Bytes(), canonical) {
		t.Error("lossless subscriber diverged from the canonical stream")
	}
	lossy := subs[1]
	if n := len(lossy); n == 0 || lossy[n-1].Kind != KindDone {
		t.Errorf("lossy subscriber ended with %+v, want the done event", lossy)
	}

	// -j 8, eight concurrent sessions, different buffer configs: every
	// canonical stream must be byte-identical to the golden one.
	const sessions = 8
	var wg sync.WaitGroup
	streams := make([][]byte, sessions)
	bufConfigs := [][]int{{1}, {4}, {64}, {1 << 12}, {1, 1 << 12}, {2, 2}, {}, {8, 1}}
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			streams[i], _ = goldenSession(t, det, 8, bufConfigs[i])
		}()
	}
	wg.Wait()
	for i, s := range streams {
		if !bytes.Equal(s, golden) {
			t.Errorf("concurrent session %d (bufs %v) diverged from the golden stream", i, bufConfigs[i])
		}
	}
}
