package stream

import (
	"errors"
	"math"
	"testing"

	"fsml/internal/core"
	"fsml/internal/dataset"
	"fsml/internal/pmu"
)

// streamTestDetector trains a tiny two-attribute tree so engine tests
// can dial any raw verdict sequence by hand: a high EV_A rate reads as
// bad-fs, a high EV_B rate as bad-ma, both low as good.
func streamTestDetector(t testing.TB) *core.Detector {
	t.Helper()
	d := dataset.New([]string{"EV_A", "EV_B"})
	add := func(a, b float64, label string, n int) {
		for i := 0; i < n; i++ {
			jitter := float64(i) * 1e-4
			d.Add(dataset.Instance{Features: []float64{a + jitter, b + jitter}, Label: label})
		}
	}
	add(0.001, 0.001, "good", 4)
	add(0.5, 0.001, "bad-fs", 4)
	add(0.001, 0.5, "bad-ma", 4)
	det, err := core.TrainDetector(d)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// testSample builds one slice sample with the given EV_A/EV_B rates
// over 1000 instructions.
func testSample(aRate, bRate float64) pmu.Sample {
	return pmu.Sample{
		Names:        []string{"EV_A", "EV_B"},
		Counts:       []float64{aRate * 1000, bRate * 1000},
		Instructions: 1000,
	}
}

const (
	goodRate = 0.001
	badRate  = 0.5
)

// pushClasses feeds one sample per raw class letter ('g' good, 'b'
// bad-fs, 'm' bad-ma) and returns every event produced.
func pushClasses(t *testing.T, e *Engine, classes string) []Event {
	t.Helper()
	var out []Event
	for i, c := range classes {
		a, b := goodRate, goodRate
		switch c {
		case 'b':
			a = badRate
		case 'm':
			b = badRate
		}
		evs, err := e.Push(testSample(a, b), 0.5)
		if err != nil {
			t.Fatalf("push %d (%c): %v", i, c, err)
		}
		out = append(out, evs...)
	}
	return out
}

func newTestEngine(t *testing.T, spec WindowSpec, env *Envelope) *Engine {
	t.Helper()
	e, err := NewEngine(streamTestDetector(t), EngineConfig{Spec: spec, Envelope: env, MinInstructions: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineWindowGeometry(t *testing.T) {
	e := newTestEngine(t, WindowSpec{Size: 4, Stride: 2, Hysteresis: 1}, nil)
	events := pushClasses(t, e, "gggggggg")
	var wins []*WindowVerdict
	for _, ev := range events {
		if ev.Kind == KindWindow {
			wins = append(wins, ev.Window)
		}
	}
	want := []struct{ idx, start, end int }{{0, 0, 4}, {1, 2, 6}, {2, 4, 8}}
	if len(wins) != len(want) {
		t.Fatalf("got %d windows, want %d", len(wins), len(want))
	}
	for i, w := range want {
		v := wins[i]
		if v.Index != w.idx || v.Start != w.start || v.End != w.end {
			t.Errorf("window %d = (idx %d, %d..%d), want (idx %d, %d..%d)",
				i, v.Index, v.Start, v.End, w.idx, w.start, w.end)
		}
		if v.Instructions != 4000 {
			t.Errorf("window %d instructions = %g, want 4000", i, v.Instructions)
		}
		if v.Seconds != 2 {
			t.Errorf("window %d seconds = %g, want 2", i, v.Seconds)
		}
		if v.Class != "good" {
			t.Errorf("window %d class = %q", i, v.Class)
		}
	}
}

func TestEngineRollingSumsExact(t *testing.T) {
	// The incremental sums must match a direct recomputation exactly:
	// the counts are integer-valued float64s, so add/subtract is exact.
	e := newTestEngine(t, WindowSpec{Size: 3, Stride: 1, Hysteresis: 1}, nil)
	var all []pmu.Sample
	winIdx := 0
	for i := 0; i < 40; i++ {
		s := pmu.Sample{
			Names:        []string{"EV_A", "EV_B"},
			Counts:       []float64{float64((i*7919 + 13) % 5000), float64((i*104729 + 7) % 3000)},
			Instructions: float64(1000 + i%17),
		}
		all = append(all, s)
		events, err := e.Push(s, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if ev.Kind != KindWindow {
				continue
			}
			v := ev.Window
			var instr float64
			for _, ws := range all[v.Start:v.End] {
				instr += ws.Instructions
			}
			if v.Instructions != instr {
				t.Fatalf("window %d instructions = %g, want exact %g", v.Index, v.Instructions, instr)
			}
			winIdx++
		}
	}
	if winIdx != 40-2 {
		t.Errorf("saw %d windows, want %d", winIdx, 38)
	}
}

// phaseEvents filters the phase changes out of an event stream.
func phaseEvents(events []Event) []*PhaseChange {
	var out []*PhaseChange
	for _, ev := range events {
		if ev.Kind == KindPhase {
			out = append(out, ev.Phase)
		}
	}
	return out
}

func TestEngineHysteresisSuppressesBlips(t *testing.T) {
	// One noisy bad-fs window inside a good run must not flip the
	// smoothed class; a sustained run must, back-dated to its start.
	e := newTestEngine(t, WindowSpec{Size: 1, Stride: 1, Hysteresis: 3}, nil)
	events := pushClasses(t, e, "ggbggbbbgg")
	phases := phaseEvents(events)
	want := []PhaseChange{
		{From: "", To: "good", Window: 0, Start: 0, Sample: 0},
		{From: "good", To: "bad-fs", Window: 6, Start: 5, Sample: 5},
		{From: "bad-fs", To: "good", Window: 9, Start: 8, Sample: 8},
	}
	if len(phases) != len(want) {
		t.Fatalf("got %d phase changes %+v, want %d", len(phases), phases, len(want))
	}
	for i, w := range want {
		if *phases[i] != w {
			t.Errorf("phase %d = %+v, want %+v", i, *phases[i], w)
		}
	}
	// The blip window itself must still report its raw class alongside
	// the held smoothed class.
	for _, ev := range events {
		if ev.Kind == KindWindow && ev.Window.Index == 2 {
			if ev.Window.Class != "bad-fs" || ev.Window.Smoothed != "good" {
				t.Errorf("blip window: class %q smoothed %q, want bad-fs/good", ev.Window.Class, ev.Window.Smoothed)
			}
		}
	}

	done, err := e.Finish(false)
	if err != nil {
		t.Fatal(err)
	}
	sum := done[0].Summary
	if sum.Phases != 3 || sum.Final != "good" {
		t.Errorf("summary phases=%d final=%q, want 3/good", sum.Phases, sum.Final)
	}
	wantSegs := []PhaseSegment{
		{Class: "good", Start: 0, End: 4},
		{Class: "bad-fs", Start: 5, End: 7},
		{Class: "good", Start: 8, End: 9},
	}
	if len(sum.PhaseRuns) != len(wantSegs) {
		t.Fatalf("segments = %+v, want %+v", sum.PhaseRuns, wantSegs)
	}
	for i, w := range wantSegs {
		if sum.PhaseRuns[i] != w {
			t.Errorf("segment %d = %+v, want %+v", i, sum.PhaseRuns[i], w)
		}
	}
}

func TestEngineHysteresisOneIsUnsmoothed(t *testing.T) {
	e := newTestEngine(t, WindowSpec{Size: 1, Stride: 1, Hysteresis: 1}, nil)
	events := pushClasses(t, e, "gbg")
	if n := len(phaseEvents(events)); n != 3 {
		t.Errorf("hysteresis 1 produced %d phase changes over g,b,g; want every flip (3)", n)
	}
}

func TestEngineDriftEdgeTriggered(t *testing.T) {
	env := &Envelope{Attrs: []string{"EV_A"}, Lo: []float64{0}, Hi: []float64{0.01}}
	e := newTestEngine(t, WindowSpec{Size: 1, Stride: 1, Hysteresis: 1}, env)
	events := pushClasses(t, e, "ggbbbggbg")
	var drifts []*DriftAlarm
	var cleared []*DriftCleared
	for _, ev := range events {
		switch ev.Kind {
		case KindDrift:
			drifts = append(drifts, ev.Drift)
		case KindDriftClear:
			cleared = append(cleared, ev.DriftClear)
		}
	}
	// Two excursions outside the envelope -> exactly two alarms, at the
	// first window of each.
	if len(drifts) != 2 {
		t.Fatalf("got %d drift alarms %+v, want 2", len(drifts), drifts)
	}
	if drifts[0].Window != 2 || drifts[1].Window != 7 {
		t.Errorf("alarm windows = %d, %d; want 2, 7", drifts[0].Window, drifts[1].Window)
	}
	for _, d := range drifts {
		if len(d.Features) != 1 || d.Features[0] != "EV_A" || d.Score != 1 {
			t.Errorf("alarm = %+v; want EV_A out with score 1", d)
		}
	}
	// Each excursion ends -> a paired falling-edge event at the first
	// recovered window, back-referencing its alarm.
	if len(cleared) != 2 {
		t.Fatalf("got %d drift-cleared events %+v, want 2", len(cleared), cleared)
	}
	if cleared[0].Window != 5 || cleared[0].Since != 2 || cleared[0].Windows != 3 {
		t.Errorf("cleared[0] = %+v; want window 5 since 2 over 3 windows", cleared[0])
	}
	if cleared[1].Window != 8 || cleared[1].Since != 7 || cleared[1].Windows != 1 {
		t.Errorf("cleared[1] = %+v; want window 8 since 7 over 1 window", cleared[1])
	}
	done, err := e.Finish(false)
	if err != nil {
		t.Fatal(err)
	}
	if done[0].Summary.DriftAlarms != 2 {
		t.Errorf("summary drift alarms = %d, want 2", done[0].Summary.DriftAlarms)
	}
	if done[0].Summary.DriftCleared != 2 {
		t.Errorf("summary drift cleared = %d, want 2", done[0].Summary.DriftCleared)
	}
}

// TestEngineDriftOpenEpisodeStaysOpen pins the falling-edge contract at
// stream end: an alarm with no recovery before Finish emits no
// DriftCleared and is not counted as cleared.
func TestEngineDriftOpenEpisodeStaysOpen(t *testing.T) {
	env := &Envelope{Attrs: []string{"EV_A"}, Lo: []float64{0}, Hi: []float64{0.01}}
	e := newTestEngine(t, WindowSpec{Size: 1, Stride: 1, Hysteresis: 1}, env)
	events := pushClasses(t, e, "ggbbb")
	for _, ev := range events {
		if ev.Kind == KindDriftClear {
			t.Fatalf("uncleared drift emitted a drift-clear event: %+v", ev.DriftClear)
		}
	}
	done, err := e.Finish(false)
	if err != nil {
		t.Fatal(err)
	}
	if s := done[0].Summary; s.DriftAlarms != 1 || s.DriftCleared != 0 {
		t.Errorf("summary alarms/cleared = %d/%d, want 1/0", s.DriftAlarms, s.DriftCleared)
	}
}

func TestEngineDriftUnknownAttr(t *testing.T) {
	env := &Envelope{Attrs: []string{"NO_SUCH"}, Lo: []float64{0}, Hi: []float64{1}}
	e := newTestEngine(t, WindowSpec{Size: 1, Stride: 1, Hysteresis: 1}, env)
	_, err := e.Push(testSample(goodRate, goodRate), 0.5)
	if err == nil || !errors.Is(err, err) || err.Error() == "" {
		t.Fatalf("unknown envelope attribute accepted: %v", err)
	}
}

func TestEngineMinInstructionsGuard(t *testing.T) {
	// The default 2000-instruction guard leaves a 1000-instruction
	// window unclassified.
	e, err := NewEngine(streamTestDetector(t), EngineConfig{Spec: WindowSpec{Size: 1, Stride: 1, Hysteresis: 1}})
	if err != nil {
		t.Fatal(err)
	}
	events, err := e.Push(testSample(badRate, goodRate), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindWindow {
		t.Fatalf("events = %+v, want one window", events)
	}
	if v := events[0].Window; v.Class != "" || v.Smoothed != "" {
		t.Errorf("starved window classified as %q/%q", v.Class, v.Smoothed)
	}
	done, err := e.Finish(false)
	if err != nil {
		t.Fatal(err)
	}
	sum := done[0].Summary
	if sum.Windows != 1 || sum.Classified != 0 {
		t.Errorf("summary windows=%d classified=%d, want 1/0", sum.Windows, sum.Classified)
	}
}

func TestEngineLayoutChangeRejected(t *testing.T) {
	e := newTestEngine(t, DefaultWindowSpec(), nil)
	if _, err := e.Push(testSample(goodRate, goodRate), 0.5); err != nil {
		t.Fatal(err)
	}
	bad := pmu.Sample{Names: []string{"EV_B", "EV_A"}, Counts: []float64{1, 1}, Instructions: 1000}
	if _, err := e.Push(bad, 0.5); err == nil {
		t.Fatal("reordered layout accepted mid-stream")
	}
}

func TestEngineLifecycleErrors(t *testing.T) {
	if _, err := NewEngine(nil, EngineConfig{}); err == nil {
		t.Error("nil detector accepted")
	}
	var specErr *SpecError
	if _, err := NewEngine(streamTestDetector(t), EngineConfig{Spec: WindowSpec{Size: 2, Stride: 3, Hysteresis: 1}}); !errors.As(err, &specErr) {
		t.Errorf("bad spec error = %v, want *SpecError", err)
	}
	e := newTestEngine(t, DefaultWindowSpec(), nil)
	if _, err := e.Finish(false); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finish(false); err == nil {
		t.Error("second Finish accepted")
	}
	if _, err := e.Push(testSample(goodRate, goodRate), 0.5); err == nil {
		t.Error("push after Finish accepted")
	}
}

func TestEngineDegradedWindow(t *testing.T) {
	// A window containing flagged counter reads must degrade, not fail:
	// the union of flags reaches ClassifyRobust.
	e := newTestEngine(t, WindowSpec{Size: 2, Stride: 2, Hysteresis: 1}, nil)
	s := testSample(badRate, goodRate)
	s.Flags = []pmu.CountFlag{pmu.FlagSaturated, 0}
	if _, err := e.Push(s, 0.5); err != nil {
		t.Fatal(err)
	}
	events, err := e.Push(testSample(badRate, goodRate), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Kind != KindWindow {
		t.Fatalf("events = %+v", events)
	}
	v := events[0].Window
	if !v.Degraded || len(v.Suspects) == 0 {
		t.Errorf("flagged window not degraded: %+v", v)
	}
	if v.Class == "" || v.Confidence >= 1 {
		t.Errorf("degraded window: class %q confidence %g, want a blended prediction with confidence < 1", v.Class, v.Confidence)
	}
}

func TestEnvelopeFromDataset(t *testing.T) {
	d := dataset.New([]string{"EV_A", "EV_B"})
	d.Add(dataset.Instance{Features: []float64{0.1, 5}, Label: "good"})
	d.Add(dataset.Instance{Features: []float64{0.3, 5}, Label: "good"})
	env := EnvelopeFromDataset(d, 0.5)
	// EV_A: range [0.1, 0.3], width 0.2, margin 0.1 each side.
	if math.Abs(env.Lo[0]-0.0) > 1e-12 || math.Abs(env.Hi[0]-0.4) > 1e-12 {
		t.Errorf("EV_A bounds = [%g, %g], want [0, 0.4]", env.Lo[0], env.Hi[0])
	}
	// EV_B is constant: widened by margin * magnitude.
	if math.Abs(env.Lo[1]-2.5) > 1e-12 || math.Abs(env.Hi[1]-7.5) > 1e-12 {
		t.Errorf("EV_B bounds = [%g, %g], want [2.5, 7.5]", env.Lo[1], env.Hi[1])
	}
}

func TestEnvelopeFromTree(t *testing.T) {
	det := streamTestDetector(t)
	env := EnvelopeFromTree(det.Tree, 1)
	if len(env.Attrs) != len(det.Tree.Attrs) {
		t.Fatalf("envelope attrs = %v", env.Attrs)
	}
	splitSeen := false
	for i, a := range env.Attrs {
		if env.Lo[i] != 0 {
			t.Errorf("%s lo = %g, want 0", a, env.Lo[i])
		}
		if !math.IsInf(env.Hi[i], 1) {
			splitSeen = true
			if env.Hi[i] <= 0 {
				t.Errorf("%s hi = %g", a, env.Hi[i])
			}
		}
	}
	if !splitSeen {
		t.Error("no attribute got a finite bound from the tree's splits")
	}
}
