package stream

// BenchmarkStreamClassify compares the two ways to classify a recorded
// slice-sample stream: the online windowed engine (incremental rolling
// sums, one classification per window, phase/drift tracking) against
// the batch baseline (aggregate the whole run, classify once). One op
// processes the full benchStreamLen-sample stream, so the ratio is the
// price of live per-window verdicts over a single end-of-run verdict.
// Numbers are recorded in EXPERIMENTS.md with the 1-CPU host caveat.

import (
	"testing"

	"fsml/internal/pmu"
)

const benchStreamLen = 1024

// benchSamples builds a three-phase sample stream. Each sample owns its
// Names slice, mirroring pmu.Read, so the engine pays its real
// layout-comparison cost.
func benchSamples() []pmu.Sample {
	samples := make([]pmu.Sample, benchStreamLen)
	for i := range samples {
		a, b := 0.001, 0.001
		if i >= benchStreamLen/3 && i < 2*benchStreamLen/3 {
			a = 0.5 // the false-sharing middle phase
		}
		samples[i] = pmu.Sample{
			Names:        []string{"EV_A", "EV_B"},
			Counts:       []float64{a * 1000, b * 1000},
			Instructions: 1000,
		}
	}
	return samples
}

func BenchmarkStreamClassify(b *testing.B) {
	det := streamTestDetector(b)
	samples := benchSamples()
	spec := WindowSpec{Size: 8, Stride: 8, Hysteresis: 3}

	b.Run("windowed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := NewEngine(det, EngineConfig{Spec: spec, MinInstructions: 1})
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range samples {
				if _, err := e.Push(s, 1e-3); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := e.Finish(false); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("fullrun", func(b *testing.B) {
		b.ReportAllocs()
		agg := pmu.Sample{
			Names:  samples[0].Names,
			Counts: make([]float64, len(samples[0].Counts)),
		}
		for i := 0; i < b.N; i++ {
			for j := range agg.Counts {
				agg.Counts[j] = 0
			}
			agg.Instructions = 0
			for _, s := range samples {
				for j, c := range s.Counts {
					agg.Counts[j] += c
				}
				agg.Instructions += s.Instructions
			}
			if _, err := det.ClassifyRobust(agg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
