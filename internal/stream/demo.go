package stream

// The seeded demo workload the acceptance tests, the watch smoke target,
// and examples/streaming all share: a three-phase program whose middle
// phase false-shares. Keeping it here (rather than in the example) lets
// the automated phase test and the human-facing demo exercise literally
// the same kernels.

import (
	"fsml/internal/machine"
	"fsml/internal/mem"
)

// DemoProgram names the built-in phased workload for CLI and API use.
const DemoProgram = "phases-demo"

// PhasedKernels builds the good -> bad-fs -> good demonstration
// workload: each thread streams over a private input slice (clean),
// then hammers its slot of one packed counter line shared with every
// other thread (false sharing), then streams again. perPhase is the
// iteration count of each phase.
func PhasedKernels(threads, perPhase int) []machine.Kernel {
	// The space is a pure address allocator (no backing memory), so size
	// it to the workload: the streamed input dominates, plus a line-
	// padded slack for the two counter arrays.
	sp := mem.NewSpace(uint64(perPhase*threads)*8 + uint64(threads)*2*mem.LineSize + 1<<16)
	input := mem.NewArray(sp, perPhase*threads, 8)
	packed := mem.NewArray(sp, threads, 8)
	padded := mem.NewPaddedArray(sp, threads, 8)
	kernels := make([]machine.Kernel, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		start := tid * perPhase
		scan := func() machine.Kernel {
			return &machine.IterKernel{I: start, End: start + perPhase,
				Body: func(ctx *machine.Ctx, i int) {
					ctx.Load(input.Addr(i))
					ctx.Exec(2)
					ctx.Store(padded.Addr(tid))
				}}
		}
		hammer := &machine.IterKernel{I: start, End: start + perPhase,
			Body: func(ctx *machine.Ctx, i int) {
				ctx.Load(packed.Addr(tid))
				ctx.Exec(1)
				ctx.Store(packed.Addr(tid))
			}}
		kernels[tid] = &machine.SeqKernel{Stages: []machine.Kernel{scan(), hammer, scan()}}
	}
	return kernels
}
