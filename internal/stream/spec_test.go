package stream

import (
	"errors"
	"testing"
)

func TestParseWindowSpec(t *testing.T) {
	cases := []struct {
		in   string
		want WindowSpec
	}{
		{"", DefaultWindowSpec()},
		{"8", WindowSpec{Size: 8, Stride: 8, Hysteresis: 3}},
		{"16:4", WindowSpec{Size: 16, Stride: 4, Hysteresis: 3}},
		{"16:4:5", WindowSpec{Size: 16, Stride: 4, Hysteresis: 5}},
		{"1:1:1", WindowSpec{Size: 1, Stride: 1, Hysteresis: 1}},
		{"65536:65536:1024", WindowSpec{Size: MaxWindowSize, Stride: MaxWindowSize, Hysteresis: MaxHysteresis}},
	}
	for _, c := range cases {
		got, err := ParseWindowSpec(c.in)
		if err != nil {
			t.Errorf("ParseWindowSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseWindowSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseWindowSpecErrors(t *testing.T) {
	cases := []struct {
		in    string
		field string
	}{
		{"0", "size"},
		{"65537", "size"},
		{"x", "size"},
		{"-4", "size"},
		{" 8", "size"},
		{"8:", "stride"},
		{"8:9", "stride"},
		{"8:0", "stride"},
		{"8:4:0", "hysteresis"},
		{"8:4:1025", "hysteresis"},
		{"8:4:3:1", "spec"},
		{"8:4:99999999999999999999", "hysteresis"},
	}
	for _, c := range cases {
		_, err := ParseWindowSpec(c.in)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("ParseWindowSpec(%q) err = %v, want *SpecError", c.in, err)
			continue
		}
		if se.Field != c.field {
			t.Errorf("ParseWindowSpec(%q) rejected field %q, want %q (%v)", c.in, se.Field, c.field, err)
		}
	}
}

func TestWindowSpecRoundTrip(t *testing.T) {
	for _, w := range []WindowSpec{DefaultWindowSpec(), {Size: 16, Stride: 4, Hysteresis: 5}} {
		got, err := ParseWindowSpec(w.String())
		if err != nil {
			t.Errorf("reparse %q: %v", w.String(), err)
			continue
		}
		if got != w {
			t.Errorf("round trip %q = %+v, want %+v", w.String(), got, w)
		}
	}
}

// FuzzParseWindowSpec throws arbitrary strings at the parser — a window
// spec is attacker input on the watch endpoint's query string.
// Invariants: no panic on any input; every accepted spec validates, and
// survives a String/Parse round trip identically.
func FuzzParseWindowSpec(f *testing.F) {
	seeds := []string{
		"", "8", "16:4", "16:4:5", "1:1:1",
		"65536:65536:1024", // the exact bounds
		"65537", "0", "8:9", "8:0", "8:4:0",
		"8:4:3:1", ":", "::", "8::3",
		"-4", "+4", " 8", "8 ", "0x10",
		"99999999999999999999",      // int64 overflow
		"184467440737095516150:1:1", // uint64 overflow
		"8:4:1025",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		w, err := ParseWindowSpec(s)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseWindowSpec(%q) rejected with untyped error %v", s, err)
			}
			return
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("ParseWindowSpec(%q) accepted invalid spec %+v: %v", s, w, err)
		}
		rt, err := ParseWindowSpec(w.String())
		if err != nil {
			t.Fatalf("reparsing %q (from %q): %v", w.String(), s, err)
		}
		if rt != w {
			t.Fatalf("round trip changed the spec: %+v -> %+v", w, rt)
		}
	})
}
