// Package stream is the online detection engine: it turns the paper's
// whole-run (or time-sliced, §6) batch classification into a continuous
// monitor. A live sequence of PMU slice samples — from a running
// simulated workload or a replayed trace — is aggregated into sliding
// windows with incremental per-window normalization, each window is
// classified through the trained detector (degrading gracefully on
// suspect counter reads, see core.Detector.ClassifyRobust), and the raw
// verdict stream is smoothed with hysteresis + majority voting so one
// noisy window cannot flip the diagnosis. The smoothed class shifting
// emits phase-change events — the online analogue of
// core.SliceProfile.PhaseRuns — and a per-window envelope check emits
// drift alarms when the observed feature distribution departs from what
// training saw.
//
// Everything in this package is deterministic: the engine is a pure
// sequential state machine, so the same seed and window spec produce a
// byte-identical event stream regardless of how many sessions run
// concurrently or how subscribers buffer (backpressure drops happen at
// the subscription boundary and are counted, never reordered — see
// monitor.go).
package stream

import (
	"fmt"
	"math"

	"fsml/internal/core"
	"fsml/internal/dataset"
	"fsml/internal/ml"
	"fsml/internal/pmu"
)

// Event kinds carried on a stream.
const (
	// KindWindow is one classified window verdict.
	KindWindow = "window"
	// KindPhase is a smoothed-class transition.
	KindPhase = "phase"
	// KindDrift is a feature-distribution drift alarm (edge-triggered).
	KindDrift = "drift"
	// KindDriftClear is the paired recovery event: the feature
	// distribution returned inside the training envelope after a drift
	// alarm. Every KindDrift is eventually followed by at most one
	// KindDriftClear (an episode still open when the stream ends emits
	// none).
	KindDriftClear = "drift-clear"
	// KindDone closes a stream with its summary.
	KindDone = "done"
)

// Event is one element of the monitoring stream. Exactly one of the
// payload pointers matches Kind; the flat shape keeps the SSE wire
// format and the golden test trivially byte-stable.
type Event struct {
	// Seq is the event's ordinal in the session, starting at 0.
	Seq int `json:"seq"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Window is set for KindWindow events.
	Window *WindowVerdict `json:"window,omitempty"`
	// Phase is set for KindPhase events.
	Phase *PhaseChange `json:"phase,omitempty"`
	// Drift is set for KindDrift events.
	Drift *DriftAlarm `json:"drift,omitempty"`
	// DriftClear is set for KindDriftClear events.
	DriftClear *DriftCleared `json:"drift_clear,omitempty"`
	// Summary is set for KindDone events.
	Summary *Summary `json:"summary,omitempty"`
}

// WindowVerdict is the classification of one window.
type WindowVerdict struct {
	// Index is the window ordinal, starting at 0.
	Index int `json:"index"`
	// Start and End delimit the window's slice samples: [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Class is the raw per-window verdict ("" when the window retired
	// too few instructions to classify).
	Class string `json:"class"`
	// Confidence and Degraded record classification quality when flagged
	// counter reads forced a partial-subset prediction.
	Confidence float64 `json:"confidence"`
	Degraded   bool    `json:"degraded,omitempty"`
	// Suspects lists flagged events behind a degraded verdict.
	Suspects []string `json:"suspects,omitempty"`
	// Smoothed is the hysteresis-smoothed class after this window's vote
	// ("" until the first window classifies).
	Smoothed string `json:"smoothed"`
	// Instructions and Seconds describe the window's interval.
	Instructions float64 `json:"instructions"`
	Seconds      float64 `json:"seconds"`
}

// PhaseChange reports the smoothed class shifting — the live "the
// program just entered a false-sharing phase" signal.
type PhaseChange struct {
	// From and To are the previous and new smoothed classes (From is ""
	// on the first classified window).
	From string `json:"from"`
	To   string `json:"to"`
	// Window is the window index at which the switch was confirmed
	// (hysteresis confirms a transition a few windows after it begins).
	Window int `json:"window"`
	// Start back-dates the transition to the first window of the raw-
	// verdict run that won the vote, so reported phase boundaries track
	// the workload, not the smoothing lag.
	Start int `json:"start"`
	// Sample is the slice-sample index at which the Start window began.
	Sample int `json:"sample"`
}

// DriftAlarm reports the window feature distribution leaving the
// training envelope. Alarms are edge-triggered: one alarm when drift
// begins, re-armed once a window returns inside the envelope.
type DriftAlarm struct {
	// Window is the first drifting window.
	Window int `json:"window"`
	// Features lists the out-of-envelope attributes, in envelope order.
	Features []string `json:"features"`
	// Score is the fraction of envelope attributes out of bounds.
	Score float64 `json:"score"`
}

// DriftCleared reports recovery from a drift episode: the first window
// whose features are all back inside the training envelope after a
// DriftAlarm. Consumers that debounce alarms (the model-lifecycle
// manager, `fsml watch -json` dashboards) need the falling edge too —
// without it an edge-triggered alarm looks permanent.
type DriftCleared struct {
	// Window is the window index at which the features recovered.
	Window int `json:"window"`
	// Since is the window index of the paired DriftAlarm.
	Since int `json:"since"`
	// Windows is how many windows the episode spanned (Window - Since).
	Windows int `json:"windows"`
}

// PhaseSegment is one maximal run of the smoothed class, in window
// indices — the streaming analogue of core.PhaseRun.
type PhaseSegment struct {
	Class string `json:"class"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

// Summary closes a stream: what was seen and what it amounted to.
type Summary struct {
	// Samples is the number of slice samples consumed.
	Samples int `json:"samples"`
	// Windows is the number of windows formed; Classified counts those
	// that retired enough instructions to classify.
	Windows    int `json:"windows"`
	Classified int `json:"classified"`
	// Phases counts smoothed-class transitions, DriftAlarms the drift
	// alarms raised, DriftCleared the episodes that recovered (an alarm
	// still open at stream end stays uncounted here).
	Phases       int `json:"phases"`
	DriftAlarms  int `json:"drift_alarms"`
	DriftCleared int `json:"drift_cleared"`
	// Final is the smoothed class when the stream ended.
	Final string `json:"final"`
	// PhaseRuns is the smoothed phase timeline, in window indices.
	PhaseRuns []PhaseSegment `json:"phase_runs,omitempty"`
	// Seconds is the total simulated time streamed.
	Seconds float64 `json:"seconds"`
	// Truncated marks a stream that was cancelled (client gone, server
	// shutting down) rather than run to workload completion.
	Truncated bool `json:"truncated,omitempty"`
}

// ---------------------------------------------------------------------------
// Envelope

// Envelope is the training feature envelope drift is measured against:
// per-attribute [Lo, Hi] bounds on the normalized event rates.
type Envelope struct {
	Attrs []string
	Lo    []float64
	Hi    []float64
}

// EnvelopeFromDataset computes the envelope of a labeled training set:
// per-attribute min/max over every instance, widened on each side by
// margin times the attribute's observed range (a constant attribute is
// widened by margin times its magnitude, so the envelope never has zero
// width). A negative margin means the default 0.25.
func EnvelopeFromDataset(d *dataset.Dataset, margin float64) *Envelope {
	if margin < 0 {
		margin = 0.25
	}
	env := &Envelope{
		Attrs: append([]string(nil), d.Attrs...),
		Lo:    make([]float64, len(d.Attrs)),
		Hi:    make([]float64, len(d.Attrs)),
	}
	for a := range d.Attrs {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, inst := range d.Instances {
			v := inst.Features[a]
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(d.Instances) == 0 {
			lo, hi = 0, math.Inf(1)
		}
		width := hi - lo
		if width == 0 {
			width = math.Abs(hi)
			if width == 0 {
				width = 1
			}
		}
		env.Lo[a] = lo - margin*width
		env.Hi[a] = hi + margin*width
	}
	return env
}

// EnvelopeFromTree derives a coarse envelope from a trained tree alone,
// for deployments that have the model but not its training data (the
// serving registry): each attribute's upper bound is its largest split
// threshold scaled by (1 + slack), its lower bound 0 (normalized event
// rates are non-negative). Attributes the tree never splits on are
// unbounded. A non-positive slack means the default 4.
func EnvelopeFromTree(t *ml.Tree, slack float64) *Envelope {
	if slack <= 0 {
		slack = 4
	}
	env := &Envelope{
		Attrs: append([]string(nil), t.Attrs...),
		Lo:    make([]float64, len(t.Attrs)),
		Hi:    make([]float64, len(t.Attrs)),
	}
	maxThr := make([]float64, len(t.Attrs))
	seen := make([]bool, len(t.Attrs))
	var walk func(n *ml.Node)
	walk = func(n *ml.Node) {
		if n == nil || n.Leaf {
			return
		}
		if n.Attr >= 0 && n.Attr < len(maxThr) {
			if !seen[n.Attr] || n.Threshold > maxThr[n.Attr] {
				maxThr[n.Attr] = n.Threshold
				seen[n.Attr] = true
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	for a := range env.Attrs {
		if seen[a] {
			env.Hi[a] = maxThr[a] * (1 + slack)
		} else {
			env.Hi[a] = math.Inf(1)
		}
	}
	return env
}

// ---------------------------------------------------------------------------
// Engine

// EngineConfig shapes an Engine.
type EngineConfig struct {
	// Spec is the window geometry and smoothing depth (zero value:
	// DefaultWindowSpec).
	Spec WindowSpec
	// Envelope, when non-nil, enables drift alarms.
	Envelope *Envelope
	// MinInstructions guards against classifying near-empty windows;
	// a window that retired fewer instructions stays unclassified
	// (default 2000, matching the sliced detector's guard).
	MinInstructions float64
}

// Classifier is the per-window verdict source. core.Detector implements
// it directly; the multi-pathology ensemble plugs in through its
// core-compatible adapter (ensemble.RobustAdapter), so phase and drift
// events carry whatever label space the classifier emits — the engine
// never assumes the paper's three classes.
type Classifier interface {
	ClassifyRobust(s pmu.Sample) (core.RobustResult, error)
}

// Engine is the pure streaming state machine: feed it one slice sample
// at a time with Push, collect the events each sample produced, and
// Finish to close the stream with its summary. It is strictly
// sequential (one goroutine) and allocation-light: the window buffer,
// rolling sums, and the aggregate sample are set up once and reused, so
// the per-sample cost is the subtraction/addition of one counter row
// plus at most one classification.
type Engine struct {
	det Classifier
	cfg EngineConfig

	// layout is the event-name layout fixed by the first sample. The
	// aggregate sample reuses this exact slice so the detector's cached
	// projection takes its O(1) identity fast path.
	layout []string

	// ring holds the samples of the forming window.
	ring  []ringEntry
	head  int // index of the oldest entry
	count int // entries currently in the window

	// rolling aggregates over the ring.
	sums        []float64
	instrSum    float64
	secondsSum  float64
	flaggedIn   int // ring entries carrying any event flag
	instrFlagIn int // ring entries with a flagged instruction read

	agg pmu.Sample // reusable aggregate sample

	// envIdx maps envelope attributes into the layout (built lazily).
	envIdx []int

	// window bookkeeping.
	sampleIdx int // samples consumed
	winIdx    int // windows emitted
	winStart  int // first sample index of the forming window

	// hysteresis ring of the last Spec.Hysteresis raw verdicts.
	votes []string
	vlen  int
	vhead int

	// smoothing and phase state.
	smoothed    string
	rawRunClass string
	rawRunStart int // window index
	rawRunSmpl  int // sample index of that window's start
	segments    []PhaseSegment

	// drift state. driftSince is the window index of the open episode's
	// alarm, meaningful only while inDrift.
	inDrift    bool
	driftSince int

	// totals.
	classified   int
	phases       int
	driftAlarms  int
	driftCleared int
	seconds      float64
	seq          int
	finished     bool
}

// ringEntry is one buffered slice sample.
type ringEntry struct {
	counts    []float64
	instr     float64
	seconds   float64
	flags     []pmu.CountFlag
	instrFlag pmu.CountFlag
}

// NewEngine builds an engine for the detector. The spec is validated up
// front so a session can fail fast before any simulation work.
func NewEngine(det *core.Detector, cfg EngineConfig) (*Engine, error) {
	if det == nil {
		return nil, fmt.Errorf("stream: nil detector")
	}
	return NewEngineWith(det, cfg)
}

// NewEngineWith builds an engine around any Classifier — the seam the
// ensemble (and tests) plug into.
func NewEngineWith(det Classifier, cfg EngineConfig) (*Engine, error) {
	if det == nil {
		return nil, fmt.Errorf("stream: nil classifier")
	}
	if (cfg.Spec == WindowSpec{}) {
		cfg.Spec = DefaultWindowSpec()
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinInstructions == 0 {
		cfg.MinInstructions = 2000
	}
	return &Engine{
		det:   det,
		cfg:   cfg,
		ring:  make([]ringEntry, cfg.Spec.Size),
		votes: make([]string, cfg.Spec.Hysteresis),
	}, nil
}

// Spec returns the engine's validated window spec.
func (e *Engine) Spec() WindowSpec { return e.cfg.Spec }

// emit appends a stamped event.
func (e *Engine) emit(out []Event, ev Event) []Event {
	ev.Seq = e.seq
	e.seq++
	return append(out, ev)
}

// Push feeds one slice sample (with its simulated duration) and returns
// the events it produced: at most one window verdict, plus any phase
// change and drift alarm that verdict triggered. The first sample fixes
// the event layout; later samples must match it.
func (e *Engine) Push(s pmu.Sample, seconds float64) ([]Event, error) {
	if e.finished {
		return nil, fmt.Errorf("stream: push after Finish")
	}
	if e.layout == nil {
		e.layout = append([]string(nil), s.Names...)
		e.sums = make([]float64, len(e.layout))
		e.agg = pmu.Sample{Names: e.layout, Counts: make([]float64, len(e.layout))}
	} else if !sameNames(e.layout, s.Names) {
		return nil, fmt.Errorf("stream: sample %d event layout changed (got %d events, want the session's %d)", e.sampleIdx, len(s.Names), len(e.layout))
	}

	// Admit the sample into the ring and the rolling sums.
	slot := (e.head + e.count) % len(e.ring)
	ent := &e.ring[slot]
	if ent.counts == nil {
		ent.counts = make([]float64, len(e.layout))
	}
	copy(ent.counts, s.Counts)
	ent.instr = s.Instructions
	ent.seconds = seconds
	ent.instrFlag = s.InstrFlag
	ent.flags = nil
	if s.Flags != nil {
		ent.flags = append(ent.flags[:0], s.Flags...)
	}
	e.count++
	for i, c := range s.Counts {
		e.sums[i] += c
	}
	e.instrSum += s.Instructions
	e.secondsSum += seconds
	if flagged(s.Flags) {
		e.flaggedIn++
	}
	if s.InstrFlag.Suspect() {
		e.instrFlagIn++
	}
	e.sampleIdx++
	e.seconds += seconds

	if e.count < e.cfg.Spec.Size {
		return nil, nil
	}

	// A full window: classify, vote, slide.
	var out []Event
	out, err := e.classifyWindow(out)
	if err != nil {
		return out, err
	}
	e.slide(e.cfg.Spec.Stride)
	return out, nil
}

// classifyWindow turns the current ring contents into one verdict and
// the events it triggers.
func (e *Engine) classifyWindow(out []Event) ([]Event, error) {
	v := &WindowVerdict{
		Index:        e.winIdx,
		Start:        e.winStart,
		End:          e.winStart + e.cfg.Spec.Size,
		Instructions: e.instrSum,
		Seconds:      e.secondsSum,
	}
	startSample := e.winStart
	e.winIdx++
	e.winStart += e.cfg.Spec.Stride

	if e.instrSum >= e.cfg.MinInstructions {
		copy(e.agg.Counts, e.sums)
		e.agg.Instructions = e.instrSum
		e.agg.Flags = nil
		e.agg.InstrFlag = 0
		if e.flaggedIn > 0 {
			e.agg.Flags = e.orFlags()
		}
		if e.instrFlagIn > 0 {
			e.agg.InstrFlag = e.orInstrFlag()
		}
		rr, err := e.det.ClassifyRobust(e.agg)
		if err != nil {
			return out, fmt.Errorf("stream: window %d: %w", v.Index, err)
		}
		v.Class, v.Confidence, v.Degraded, v.Suspects = rr.Class, rr.Confidence, rr.Degraded, rr.Suspects
		e.classified++
	}

	var phase *PhaseChange
	if v.Class != "" {
		phase = e.vote(v.Class, v.Index, startSample)
	}
	v.Smoothed = e.smoothed
	out = e.emit(out, Event{Kind: KindWindow, Window: v})
	if phase != nil {
		out = e.emit(out, Event{Kind: KindPhase, Phase: phase})
	}
	if e.cfg.Envelope != nil && v.Class != "" {
		alarm, cleared, err := e.checkDrift(v.Index)
		if err != nil {
			return out, err
		}
		if alarm != nil {
			out = e.emit(out, Event{Kind: KindDrift, Drift: alarm})
		}
		if cleared != nil {
			out = e.emit(out, Event{Kind: KindDriftClear, DriftClear: cleared})
		}
	}
	return out, nil
}

// vote pushes one raw verdict into the hysteresis ring and returns the
// phase change it confirms, if any. The smoothed class switches only
// when a strict majority of the ring agrees on a different class; the
// change is back-dated to the start of the raw run that won.
func (e *Engine) vote(class string, window, sample int) *PhaseChange {
	if class != e.rawRunClass {
		e.rawRunClass, e.rawRunStart, e.rawRunSmpl = class, window, sample
	}
	if e.vlen < len(e.votes) {
		e.votes[(e.vhead+e.vlen)%len(e.votes)] = class
		e.vlen++
	} else {
		e.votes[e.vhead] = class
		e.vhead = (e.vhead + 1) % len(e.votes)
	}
	proposed := e.majority()
	if proposed == "" || proposed == e.smoothed {
		return nil
	}
	pc := &PhaseChange{From: e.smoothed, To: proposed, Window: window, Start: window, Sample: sample}
	if e.rawRunClass == proposed {
		pc.Start, pc.Sample = e.rawRunStart, e.rawRunSmpl
	}
	if n := len(e.segments); n > 0 {
		e.segments[n-1].End = pc.Start - 1
	}
	e.segments = append(e.segments, PhaseSegment{Class: proposed, Start: pc.Start, End: window})
	e.smoothed = proposed
	e.phases++
	return pc
}

// majority returns the strict-majority class of the vote ring, or ""
// when no class holds more than half the votes cast.
func (e *Engine) majority() string {
	// Hysteresis is small (<= MaxHysteresis); a linear count keeps this
	// allocation-free and deterministic.
	for i := 0; i < e.vlen; i++ {
		c := e.votes[(e.vhead+i)%len(e.votes)]
		n := 0
		for j := 0; j < e.vlen; j++ {
			if e.votes[(e.vhead+j)%len(e.votes)] == c {
				n++
			}
		}
		if 2*n > e.vlen {
			return c
		}
	}
	return ""
}

// checkDrift tests the current aggregate window against the envelope,
// returning the rising-edge alarm or the falling-edge recovery event
// the window triggers (at most one of the two is non-nil).
func (e *Engine) checkDrift(window int) (*DriftAlarm, *DriftCleared, error) {
	env := e.cfg.Envelope
	if e.envIdx == nil {
		e.envIdx = make([]int, len(env.Attrs))
		byName := make(map[string]int, len(e.layout))
		for i, n := range e.layout {
			byName[n] = i
		}
		for i, a := range env.Attrs {
			j, ok := byName[a]
			if !ok {
				return nil, nil, fmt.Errorf("stream: envelope attribute %q not in the sample layout", a)
			}
			e.envIdx[i] = j
		}
	}
	var outside []string
	for i, j := range e.envIdx {
		v := e.sums[j] / e.instrSum
		if v < env.Lo[i] || v > env.Hi[i] {
			outside = append(outside, env.Attrs[i])
		}
	}
	if len(outside) == 0 {
		if !e.inDrift {
			return nil, nil, nil
		}
		e.inDrift = false
		e.driftCleared++
		return nil, &DriftCleared{
			Window:  window,
			Since:   e.driftSince,
			Windows: window - e.driftSince,
		}, nil
	}
	if e.inDrift {
		return nil, nil, nil // still drifting: alarm already raised
	}
	e.inDrift = true
	e.driftSince = window
	e.driftAlarms++
	return &DriftAlarm{
		Window:   window,
		Features: outside,
		Score:    float64(len(outside)) / float64(len(env.Attrs)),
	}, nil, nil
}

// slide retires the n oldest ring entries from the window and the
// rolling sums — the incremental half of the per-window normalization.
func (e *Engine) slide(n int) {
	for k := 0; k < n && e.count > 0; k++ {
		ent := &e.ring[e.head]
		for i, c := range ent.counts {
			e.sums[i] -= c
		}
		e.instrSum -= ent.instr
		e.secondsSum -= ent.seconds
		if flagged(ent.flags) {
			e.flaggedIn--
		}
		if ent.instrFlag.Suspect() {
			e.instrFlagIn--
		}
		e.head = (e.head + 1) % len(e.ring)
		e.count--
	}
}

// orFlags recomputes the per-event flag union over the ring — only
// taken when the window actually contains flagged reads.
func (e *Engine) orFlags() []pmu.CountFlag {
	out := make([]pmu.CountFlag, len(e.layout))
	for k := 0; k < e.count; k++ {
		ent := &e.ring[(e.head+k)%len(e.ring)]
		for i, f := range ent.flags {
			out[i] |= f
		}
	}
	return out
}

// orInstrFlag unions the instruction-read flags over the ring.
func (e *Engine) orInstrFlag() pmu.CountFlag {
	var f pmu.CountFlag
	for k := 0; k < e.count; k++ {
		f |= e.ring[(e.head+k)%len(e.ring)].instrFlag
	}
	return f
}

// Finish closes the stream, returning the final done event. truncated
// marks a cancelled session. Finish is required exactly once.
func (e *Engine) Finish(truncated bool) ([]Event, error) {
	if e.finished {
		return nil, fmt.Errorf("stream: Finish called twice")
	}
	e.finished = true
	if n := len(e.segments); n > 0 {
		e.segments[n-1].End = e.winIdx - 1
	}
	var out []Event
	out = e.emit(out, Event{Kind: KindDone, Summary: e.summary(truncated)})
	return out, nil
}

// summary snapshots the session totals.
func (e *Engine) summary(truncated bool) *Summary {
	segs := make([]PhaseSegment, len(e.segments))
	copy(segs, e.segments)
	return &Summary{
		Samples:      e.sampleIdx,
		Windows:      e.winIdx,
		Classified:   e.classified,
		Phases:       e.phases,
		DriftAlarms:  e.driftAlarms,
		DriftCleared: e.driftCleared,
		Final:        e.smoothed,
		PhaseRuns:    segs,
		Seconds:      e.seconds,
		Truncated:    truncated,
	}
}

// sameNames is an exact element-wise layout comparison.
func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// flagged reports whether any per-event flag is set.
func flagged(fs []pmu.CountFlag) bool {
	for _, f := range fs {
		if f.Suspect() {
			return true
		}
	}
	return false
}
