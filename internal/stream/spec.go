package stream

// The window specification and its CLI/query-string surface syntax:
// "size:stride:hysteresis", with the tail parts optional. The parser is
// strict and its failures are typed (*SpecError) so the CLI and the
// watch endpoint can say exactly which field of the spec is wrong, and
// fuzzable (see FuzzParseWindowSpec) so hostile query strings can never
// panic or provoke pathological allocation.

import (
	"fmt"
	"strconv"
	"strings"
)

// WindowSpec shapes a streaming detection session: how many slice
// samples one window aggregates, how far consecutive windows advance,
// and how many window verdicts the smoothing ring votes over.
type WindowSpec struct {
	// Size is the number of slice samples per window (>= 1).
	Size int
	// Stride is the sample distance between consecutive window starts:
	// Stride == Size tumbles, Stride < Size overlaps. 1 <= Stride <= Size
	// so every sample lands in at least one window.
	Stride int
	// Hysteresis is the length of the verdict-smoothing ring: the
	// smoothed class switches only when a strict majority of the last
	// Hysteresis classified windows agree on a different class. 1
	// disables smoothing (every window verdict is final).
	Hysteresis int
}

// Spec bounds. MaxWindowSize exists for the parser: a spec is attacker
// input on the watch endpoint, and the window buffer is sized by Size.
const (
	MaxWindowSize = 1 << 16
	MaxHysteresis = 1 << 10
)

// DefaultWindowSpec is the spec used when none is given: 8-sample
// tumbling windows smoothed over 3 verdicts.
func DefaultWindowSpec() WindowSpec { return WindowSpec{Size: 8, Stride: 8, Hysteresis: 3} }

// String renders the spec in the syntax ParseWindowSpec reads.
func (w WindowSpec) String() string {
	return fmt.Sprintf("%d:%d:%d", w.Size, w.Stride, w.Hysteresis)
}

// Validate checks the spec invariants, returning a *SpecError naming
// the offending field.
func (w WindowSpec) Validate() error {
	switch {
	case w.Size < 1:
		return &SpecError{Field: "size", Value: strconv.Itoa(w.Size), Reason: "must be >= 1"}
	case w.Size > MaxWindowSize:
		return &SpecError{Field: "size", Value: strconv.Itoa(w.Size), Reason: fmt.Sprintf("must be <= %d", MaxWindowSize)}
	case w.Stride < 1:
		return &SpecError{Field: "stride", Value: strconv.Itoa(w.Stride), Reason: "must be >= 1"}
	case w.Stride > w.Size:
		return &SpecError{Field: "stride", Value: strconv.Itoa(w.Stride), Reason: fmt.Sprintf("must be <= size (%d): every sample must land in a window", w.Size)}
	case w.Hysteresis < 1:
		return &SpecError{Field: "hysteresis", Value: strconv.Itoa(w.Hysteresis), Reason: "must be >= 1"}
	case w.Hysteresis > MaxHysteresis:
		return &SpecError{Field: "hysteresis", Value: strconv.Itoa(w.Hysteresis), Reason: fmt.Sprintf("must be <= %d", MaxHysteresis)}
	}
	return nil
}

// SpecError is a typed window-spec rejection: which field, what value,
// and why. The watch endpoint maps it to HTTP 400; the CLI prints it
// verbatim.
type SpecError struct {
	// Field is "spec", "size", "stride", or "hysteresis".
	Field string
	// Value is the offending input fragment.
	Value string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *SpecError) Error() string {
	return fmt.Sprintf("stream: window spec %s %q: %s", e.Field, e.Value, e.Reason)
}

// ParseWindowSpec parses "size[:stride[:hysteresis]]". Omitted parts
// default to stride = size (tumbling windows) and hysteresis = 3; the
// empty string yields DefaultWindowSpec. Every failure is a *SpecError.
func ParseWindowSpec(s string) (WindowSpec, error) {
	if s == "" {
		return DefaultWindowSpec(), nil
	}
	parts := strings.Split(s, ":")
	if len(parts) > 3 {
		return WindowSpec{}, &SpecError{Field: "spec", Value: s, Reason: "want size[:stride[:hysteresis]]"}
	}
	size, err := specField("size", parts[0])
	if err != nil {
		return WindowSpec{}, err
	}
	w := WindowSpec{Size: size, Stride: size, Hysteresis: 3}
	if len(parts) > 1 {
		if w.Stride, err = specField("stride", parts[1]); err != nil {
			return WindowSpec{}, err
		}
	}
	if len(parts) > 2 {
		if w.Hysteresis, err = specField("hysteresis", parts[2]); err != nil {
			return WindowSpec{}, err
		}
	}
	if err := w.Validate(); err != nil {
		return WindowSpec{}, err
	}
	return w, nil
}

// specField parses one decimal field strictly: no signs, no spaces, no
// empties. The numeric bound is checked by Validate afterwards; here we
// only refuse values that do not even parse in range.
func specField(field, s string) (int, error) {
	if s == "" {
		return 0, &SpecError{Field: field, Value: s, Reason: "empty"}
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, &SpecError{Field: field, Value: s, Reason: "not a decimal number"}
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		// Only overflow reaches here given the digit check above.
		return 0, &SpecError{Field: field, Value: s, Reason: "out of range"}
	}
	return n, nil
}
