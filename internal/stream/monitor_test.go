package stream

import (
	"context"
	"sync"
	"testing"

	"fsml/internal/core"
	"fsml/internal/dataset"
	"fsml/internal/miniprog"
)

// realDetector trains the paper pipeline's detector once per test
// binary, from the same reduced grids the core tests use. The
// acceptance and golden tests below need a detector that genuinely
// recognizes the demo workload's phases, not a hand-built stub.
var (
	realDetOnce sync.Once
	realDetVal  *core.Detector
	realDetErr  error
)

func realDetector(tb testing.TB) *core.Detector {
	tb.Helper()
	realDetOnce.Do(func() {
		c := core.NewCollector()
		partA, err := c.Collect(miniprog.MultiThreadedSet(), core.Grid{
			Sizes:    []int{30000, 60000},
			MatSizes: []int{96},
			Threads:  []int{3, 6},
			Repeats: map[miniprog.Mode]int{
				miniprog.Good:  2,
				miniprog.BadFS: 1,
				miniprog.BadMA: 1,
			},
			Seed: 11,
		})
		if err != nil {
			realDetErr = err
			return
		}
		partB, err := c.Collect(miniprog.SequentialSet(), core.Grid{
			Sizes:    []int{2000, 60000, 120000},
			MatSizes: []int{96},
			Threads:  []int{1},
			Repeats: map[miniprog.Mode]int{
				miniprog.Good:  1,
				miniprog.BadMA: 1,
			},
			Seed: 12,
		})
		if err != nil {
			realDetErr = err
			return
		}
		keptA, _ := core.FilterObservations(partA, core.DefaultFilter())
		cfgB := core.DefaultFilter()
		cfgB.DropWeakGood = true
		keptB, _ := core.FilterObservations(partB, cfgB)
		d, err := core.BuildDataset(append(keptA, keptB...))
		if err != nil {
			realDetErr = err
			return
		}
		realDetVal, realDetErr = core.TrainDetector(d)
	})
	if realDetErr != nil {
		tb.Fatalf("training the acceptance detector: %v", realDetErr)
	}
	return realDetVal
}

// tinyRealEventsDetector hand-builds a detector over two real PMU
// feature names, so it projects onto Table 2 measurements without a
// training sweep — for the structural monitor tests where the verdict
// itself does not matter.
func tinyRealEventsDetector(tb testing.TB) *core.Detector {
	tb.Helper()
	d := dataset.New([]string{"SNOOP_RESPONSE.HITM", "L2_RQSTS.LD_MISS"})
	add := func(label string, hitm, miss float64) {
		for i := 0; i < 8; i++ {
			f := float64(i) * 0.01
			if err := d.Add(dataset.Instance{Features: []float64{hitm + f, miss + f/2}, Label: label}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	add("bad-fs", 0.50, 0.05)
	add("bad-ma", 0.01, 0.60)
	add("good", 0.01, 0.02)
	det, err := core.TrainDetector(d)
	if err != nil {
		tb.Fatal(err)
	}
	return det
}

// TestMonitorCatchesInjectedPhase is the acceptance test: a seeded
// good -> bad-fs -> good miniprogram streamed through the monitor must
// report the injected false-sharing phase — correct class, boundaries
// within one stride of the sliced-detection reference — with zero false
// positives in the good phases.
func TestMonitorCatchesInjectedPhase(t *testing.T) {
	det := realDetector(t)
	const (
		seed        = 5
		threads     = 6
		perPhase    = 20000
		sliceRounds = 500
	)
	spec := WindowSpec{Size: 4, Stride: 4, Hysteresis: 3}

	// Reference: the batch sliced detector over the same workload and
	// seed sees the raw per-slice phase boundaries.
	ref, err := core.NewCollector().DetectSliced(det, seed, PhasedKernels(threads, perPhase), sliceRounds)
	if err != nil {
		t.Fatal(err)
	}
	var refFS *core.PhaseRun
	for _, r := range ref.PhaseRuns() {
		if r.Class == "bad-fs" {
			r := r
			if refFS != nil {
				t.Fatalf("reference has multiple bad-fs runs:\n%s", ref)
			}
			refFS = &r
		}
	}
	if refFS == nil {
		t.Fatalf("reference sliced detection saw no bad-fs phase:\n%s", ref)
	}

	mon, err := NewMonitor(core.NewCollector(), det, MonitorConfig{
		Spec:        spec,
		SliceRounds: sliceRounds,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mon.Run(context.Background(), PhasedKernels(threads, perPhase))
	if err != nil {
		t.Fatal(err)
	}

	var classes []string
	for _, seg := range sum.PhaseRuns {
		classes = append(classes, seg.Class)
	}
	want := []string{"good", "bad-fs", "good"}
	if len(classes) != len(want) {
		t.Fatalf("smoothed phase timeline = %v, want exactly %v (no false positives)\nsummary: %+v", classes, want, sum)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("phase %d = %q, want %q (timeline %v)", i, classes[i], want[i], classes)
		}
	}
	fs := sum.PhaseRuns[1]
	// The reference boundaries are slice-sample indices; windows advance
	// by Stride samples, so the streamed boundary must land within one
	// stride (one window index) of the reference.
	wantStart := refFS.Start / spec.Stride
	wantEnd := refFS.End / spec.Stride
	if diff := fs.Start - wantStart; diff < -1 || diff > 1 {
		t.Errorf("bad-fs phase starts at window %d, reference slice %d ~ window %d (±1)", fs.Start, refFS.Start, wantStart)
	}
	if diff := fs.End - wantEnd; diff < -1 || diff > 1 {
		t.Errorf("bad-fs phase ends at window %d, reference slice %d ~ window %d (±1)", fs.End, refFS.End, wantEnd)
	}
	if sum.Final != "good" {
		t.Errorf("final smoothed class = %q, want good", sum.Final)
	}
	if sum.Truncated {
		t.Error("complete run marked truncated")
	}
}

// sinkCounters is a test CounterSink.
type sinkCounters struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (s *sinkCounters) Add(name string, delta uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = map[string]uint64{}
	}
	s.m[name] += delta
}

func (s *sinkCounters) get(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// TestMonitorBackpressureDropsOldest pins the backpressure policy: a
// slow subscriber on a tiny ring loses events — counted, oldest first —
// while the lossless OnEvent feed and the session itself are unaffected,
// and the terminal done event is always delivered.
func TestMonitorBackpressureDropsOldest(t *testing.T) {
	det := tinyRealEventsDetector(t)
	counters := &sinkCounters{}
	var canonical []Event
	mon, err := NewMonitor(core.NewCollector(), det, MonitorConfig{
		Spec:        WindowSpec{Size: 2, Stride: 2, Hysteresis: 1},
		SliceRounds: 200,
		Seed:        3,
		Counters:    counters,
		OnEvent:     func(ev Event) { canonical = append(canonical, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := mon.Subscribe(2)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mon.Run(context.Background(), PhasedKernels(4, 4000))
	if err != nil {
		t.Fatal(err)
	}
	// The session has ended; everything still buffered is what the ring
	// could hold. The subscriber was never reading, so all but the last
	// buffered events were dropped.
	var received []Event
	for ev := range sub.Events() {
		received = append(received, ev)
	}
	if len(canonical) < 4 {
		t.Fatalf("canonical stream too short to exercise drops: %d events", len(canonical))
	}
	if len(received) > 2 {
		t.Fatalf("subscriber with ring 2 received %d events", len(received))
	}
	if last := received[len(received)-1]; last.Kind != KindDone {
		t.Errorf("last buffered event is %q, want the done event", last.Kind)
	}
	wantDropped := uint64(len(canonical) - len(received))
	if got := sub.Dropped(); got != wantDropped {
		t.Errorf("sub.Dropped() = %d, want %d", got, wantDropped)
	}
	if got := counters.get(MetricWindowsDropped); got != wantDropped {
		t.Errorf("%s = %d, want %d", MetricWindowsDropped, got, wantDropped)
	}
	// Received events must be a suffix-consistent subsequence: strictly
	// increasing seq, ending at the final event.
	for i := 1; i < len(received); i++ {
		if received[i].Seq <= received[i-1].Seq {
			t.Fatalf("subscriber events out of order: seq %d then %d", received[i-1].Seq, received[i].Seq)
		}
	}
	if sum.Windows == 0 {
		t.Error("no windows formed")
	}
	if got := counters.get(MetricSessionsStarted); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSessionsStarted, got)
	}
	if got := counters.get(MetricSessionsClosed); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSessionsClosed, got)
	}
	if got := counters.get(MetricWindowsClassified); got != uint64(sum.Classified) {
		t.Errorf("%s = %d, want %d", MetricWindowsClassified, got, sum.Classified)
	}
	if got := counters.get(MetricPhaseTransitions); got != uint64(sum.Phases) {
		t.Errorf("%s = %d, want %d", MetricPhaseTransitions, got, sum.Phases)
	}
}

// TestMonitorCancelTruncates: a cancelled session still closes every
// subscription and emits a done event marked truncated.
func TestMonitorCancelTruncates(t *testing.T) {
	det := tinyRealEventsDetector(t)
	mon, err := NewMonitor(core.NewCollector(), det, MonitorConfig{
		Spec:        WindowSpec{Size: 2, Stride: 2, Hysteresis: 1},
		SliceRounds: 200,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := mon.Subscribe(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first slice: immediate truncation
	sum, err := mon.Run(ctx, PhasedKernels(4, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Truncated {
		t.Error("cancelled session not marked truncated")
	}
	var last Event
	n := 0
	for ev := range sub.Events() {
		last = ev
		n++
	}
	if n == 0 || last.Kind != KindDone || last.Summary == nil || !last.Summary.Truncated {
		t.Errorf("subscription ended with %+v after %d events, want a truncated done event", last, n)
	}
}

// TestMonitorLifecycle pins the misuse surface: double Run, late
// subscription, bad spec.
func TestMonitorLifecycle(t *testing.T) {
	det := tinyRealEventsDetector(t)
	if _, err := NewMonitor(nil, nil, MonitorConfig{}); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := NewMonitor(nil, det, MonitorConfig{Spec: WindowSpec{Size: 1, Stride: 2, Hysteresis: 1}}); err == nil {
		t.Error("invalid spec accepted")
	}
	mon, err := NewMonitor(nil, det, MonitorConfig{SliceRounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Run(context.Background(), PhasedKernels(2, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Run(context.Background(), PhasedKernels(2, 500)); err == nil {
		t.Error("second Run accepted")
	}
	if _, err := mon.Subscribe(1); err == nil {
		t.Error("subscription after Run accepted")
	}
}
