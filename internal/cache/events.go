package cache

// EvID identifies a micro-architectural event counted by the simulated
// machine. The catalogue deliberately includes far more events than the
// detector needs: the paper's methodology (§2.3) starts from 60-70
// candidate events and narrows them with mini-program runs, so the
// simulator must expose a comparably rich — and comparably redundant and
// noisy — set for the selection step to be meaningful.
//
// Events below the cache level (instructions, branches, TLB, stalls) are
// counted by internal/machine into the same per-core counter banks so that
// the PMU sees one flat event space, as on real hardware.
type EvID int

const (
	// Retirement / front end.
	EvInstructions EvID = iota // INST_RETIRED.ANY
	EvCycles                   // CPU_CLK_UNHALTED.CORE
	EvUopsRetired              // UOPS_RETIRED.ANY (modeled as instructions + memory ops)
	EvBranches                 // BR_INST_RETIRED.ALL
	EvBranchMisses             // BR_MISP_RETIRED.ALL

	// Memory instruction mix.
	EvLoads  // MEM_INST_RETIRED.LOADS
	EvStores // MEM_INST_RETIRED.STORES

	// L1 data cache.
	EvL1Hit         // L1D.HIT (noisy on real Westmere; see pmu noise model)
	EvL1LoadMiss    // L1D.LD_MISS
	EvL1StoreMiss   // L1D.ST_MISS
	EvL1Replacement // L1D.REPL — lines brought into L1D (Table 2 event 14)
	EvL1HitLFB      // MEM_LOAD_RETIRED.HIT_LFB — load hit an in-flight fill (event 12)

	// L2 (private, inclusive of L1).
	EvL2Hit            // L2_RQSTS.HIT (demand)
	EvL2Miss           // L2_RQSTS.MISS (demand)
	EvL2LdMiss         // L2_RQSTS.LD_MISS (Table 2 event 3)
	EvL2RFOMiss        // L2_RQSTS.RFO_MISS
	EvL2DemandI        // L2_DATA_RQSTS.DEMAND.I_STATE (event 1): demand req found line invalid
	EvL2RFOHitS        // L2_WRITE.RFO.S_STATE (event 2): RFO upgrade of a Shared line
	EvL2Fill           // L2_TRANSACTIONS.FILL (event 6): lines allocated into L2
	EvL2LinesInS       // L2_LINES_IN.S_STATE (event 7)
	EvL2LinesInE       // L2_LINES_IN.E_STATE
	EvL2LinesInM       // L2_LINES_IN.M_STATE (RFO fills that will be written)
	EvL2LinesOutClean  // L2_LINES_OUT.DEMAND_CLEAN (event 8)
	EvL2LinesOutDirty  // L2_LINES_OUT.DEMAND_DIRTY
	EvL2Prefetches     // L2 hardware prefetcher fills
	EvL2PrefetchUseful // prefetched lines that later took a demand hit

	// Offcore requests (what leaves the private hierarchy).
	EvOffcoreDemandRD // OFFCORE_REQUESTS.DEMAND.READ_DATA (event 5)
	EvOffcoreRFO      // OFFCORE_REQUESTS.DEMAND.RFO

	// Snoop responses, counted at the responding core as on real uncore.
	EvSnoopHit  // SNOOP_RESPONSE.HIT   (event 9):  responder had line Shared
	EvSnoopHitE // SNOOP_RESPONSE.HITE  (event 10): responder had line Exclusive
	EvSnoopHitM // SNOOP_RESPONSE.HITM  (event 11): responder had line Modified —
	//            the false-sharing telltale: write-write ping-pong on one line
	//            makes every miss hit Modified data in the other core's cache.
	EvSnoopMiss // SNOOP_RESPONSE.MISS

	// Requester-side HITM observation. The paper notes this candidate
	// (MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM) surprisingly did not survive
	// selection; the PMU models it as undercounted and noisy, as observed
	// on real Westmere parts.
	EvUncoreOtherCoreHITM

	// L3 (shared, inclusive).
	EvL3Hit      // demand requests served by L3
	EvL3Miss     // demand requests that went to memory
	EvL3LinesIn  // L3 fills
	EvL3LinesOut // L3 evictions (incl. back-invalidations of L2/L1 copies)

	// Memory controller.
	EvMemReads
	EvMemWrites

	// DTLB.
	EvDTLBMiss       // DTLB_MISSES.ANY (Table 2 event 13)
	EvDTLBWalkCycles // page-walk cycle cost

	// Resource stalls (cycle counts).
	EvStallStore // RESOURCE_STALLS.STORE (event 4)
	EvStallLoad  // RESOURCE_STALLS.LOAD  (event 15)
	EvStallAny   // RESOURCE_STALLS.ANY

	// NUMA. Demand fills served by another socket's memory controller
	// (page interleaved across sockets; see Hierarchy.homeSocket).
	EvRemoteDRAM // MEM_UNCORE_RETIRED.REMOTE_DRAM

	NumEvents // sentinel: size of a counter bank
)

var evNames = [NumEvents]string{
	EvInstructions:        "INST_RETIRED.ANY",
	EvCycles:              "CPU_CLK_UNHALTED.CORE",
	EvUopsRetired:         "UOPS_RETIRED.ANY",
	EvBranches:            "BR_INST_RETIRED.ALL",
	EvBranchMisses:        "BR_MISP_RETIRED.ALL",
	EvLoads:               "MEM_INST_RETIRED.LOADS",
	EvStores:              "MEM_INST_RETIRED.STORES",
	EvL1Hit:               "L1D.HIT",
	EvL1LoadMiss:          "L1D.LD_MISS",
	EvL1StoreMiss:         "L1D.ST_MISS",
	EvL1Replacement:       "L1D.REPL",
	EvL1HitLFB:            "MEM_LOAD_RETIRED.HIT_LFB",
	EvL2Hit:               "L2_RQSTS.HIT",
	EvL2Miss:              "L2_RQSTS.MISS",
	EvL2LdMiss:            "L2_RQSTS.LD_MISS",
	EvL2RFOMiss:           "L2_RQSTS.RFO_MISS",
	EvL2DemandI:           "L2_DATA_RQSTS.DEMAND.I_STATE",
	EvL2RFOHitS:           "L2_WRITE.RFO.S_STATE",
	EvL2Fill:              "L2_TRANSACTIONS.FILL",
	EvL2LinesInS:          "L2_LINES_IN.S_STATE",
	EvL2LinesInE:          "L2_LINES_IN.E_STATE",
	EvL2LinesInM:          "L2_LINES_IN.M_STATE",
	EvL2LinesOutClean:     "L2_LINES_OUT.DEMAND_CLEAN",
	EvL2LinesOutDirty:     "L2_LINES_OUT.DEMAND_DIRTY",
	EvL2Prefetches:        "L2_PREFETCH.FILL",
	EvL2PrefetchUseful:    "L2_PREFETCH.USEFUL",
	EvOffcoreDemandRD:     "OFFCORE_REQUESTS.DEMAND.READ_DATA",
	EvOffcoreRFO:          "OFFCORE_REQUESTS.DEMAND.RFO",
	EvSnoopHit:            "SNOOP_RESPONSE.HIT",
	EvSnoopHitE:           "SNOOP_RESPONSE.HITE",
	EvSnoopHitM:           "SNOOP_RESPONSE.HITM",
	EvSnoopMiss:           "SNOOP_RESPONSE.MISS",
	EvUncoreOtherCoreHITM: "MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM",
	EvL3Hit:               "L3.HIT",
	EvL3Miss:              "L3.MISS",
	EvL3LinesIn:           "L3_LINES_IN.ANY",
	EvL3LinesOut:          "L3_LINES_OUT.ANY",
	EvMemReads:            "UNC_QMC_NORMAL_READS.ANY",
	EvMemWrites:           "UNC_QMC_WRITES.FULL.ANY",
	EvDTLBMiss:            "DTLB_MISSES.ANY",
	EvDTLBWalkCycles:      "DTLB_MISSES.WALK_CYCLES",
	EvStallStore:          "RESOURCE_STALLS.STORE",
	EvStallLoad:           "RESOURCE_STALLS.LOAD",
	EvStallAny:            "RESOURCE_STALLS.ANY",
	EvRemoteDRAM:          "MEM_UNCORE_RETIRED.REMOTE_DRAM",
}

// String returns the Intel-style mnemonic for the event.
func (e EvID) String() string {
	if e < 0 || e >= NumEvents {
		return "EV_UNKNOWN"
	}
	return evNames[e]
}

// Counters is one per-core bank of raw event counts, indexed by EvID.
type Counters [NumEvents]uint64

// Add increments event e by n.
func (c *Counters) Add(e EvID, n uint64) { c[e] += n }

// Get returns the count of event e.
func (c *Counters) Get(e EvID) uint64 { return c[e] }

// AddAll accumulates other into c element-wise.
func (c *Counters) AddAll(other *Counters) {
	for i := range c {
		c[i] += other[i]
	}
}

// Reset zeroes the bank.
func (c *Counters) Reset() { *c = Counters{} }

// ---------------------------------------------------------------------------
// Counter-width taps
//
// Real performance counters are fixed-width registers (48 bits on the
// modeled Westmere parts) and either saturate or silently wrap when the
// ground truth outgrows them. The helpers below are the width taps the
// PMU's fault-injection path uses; keeping them here, next to the bank
// they clamp, means any future counter consumer shares one definition
// of "what a too-large count reads as".

// ClampCounter saturates v at the ceiling of a bits-wide counter: a
// detectable failure, because the read equals the maximum representable
// value.
func ClampCounter(v uint64, bits uint) uint64 {
	if bits >= 64 {
		return v
	}
	if max := uint64(1)<<bits - 1; v > max {
		return max
	}
	return v
}

// WrapCounter wraps v modulo a bits-wide counter: the silent-corruption
// failure mode, indistinguishable from a plausible small count.
func WrapCounter(v uint64, bits uint) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (uint64(1)<<bits - 1)
}
