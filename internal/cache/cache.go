// Package cache implements the simulated cache hierarchy of the target
// machine: per-core set-associative L1D and L2 caches kept coherent with
// the MESI protocol over a snooping interconnect, and a shared inclusive
// L3 that carries per-line core-valid bits acting as the snoop directory,
// mirroring the Nehalem/Westmere design the paper measured.
//
// The hierarchy is the ground truth from which the emulated PMU
// (internal/pmu) derives every performance event the classifier consumes.
// False sharing needs no special-casing anywhere: it emerges from the
// protocol as the characteristic storm of SNOOP_RESPONSE.HITM transfers
// when two cores take turns writing one line.
package cache

import (
	"fmt"

	"fsml/internal/mem"
)

// State is a MESI coherence state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Latency constants in core cycles. Values follow published Westmere
// load-to-use figures closely enough that relative table shapes hold.
const (
	LatL1      = 4   // L1D hit
	LatLFB     = 6   // load folded into an in-flight fill
	LatL2      = 10  // L2 hit
	LatL3      = 42  // L3 hit, no other-core involvement
	LatSnoop   = 55  // clean snoop hit in a peer cache (served with L3 data)
	LatHITM    = 75  // dirty cache-to-cache transfer (the false-sharing path)
	LatUpgrade = 25  // S->M upgrade (invalidation round-trip, no data)
	LatMem     = 180 // DRAM access
)

// line is one cache line's bookkeeping in a set-associative array.
type line struct {
	tag   uint64
	state State
	lru   uint64 // global access tick; smallest is the LRU victim
	// mask is used only by the L3 directory: bit c set means core c's
	// private hierarchy may hold the line.
	mask uint64
	// prefetched marks L2 lines brought in by the hardware prefetcher and
	// not yet demanded, for the L2_PREFETCH.USEFUL count.
	prefetched bool
}

// array is a generic set-associative cache array. Set selection uses a
// mask when the set count is a power of two and modulo otherwise (the
// 12 MiB Westmere L3 has 12288 sets; real parts hash the index).
type array struct {
	sets    [][]line
	ways    int
	nsets   uint64
	setMask uint64 // nsets-1 when power of two, else 0
	tick    uint64
}

func newArray(sizeBytes, ways int) *array {
	nlines := sizeBytes / mem.LineSize
	nsets := nlines / ways
	if nsets <= 0 {
		panic(fmt.Sprintf("cache: size %d with %d ways leaves no sets", sizeBytes, ways))
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	a := &array{sets: sets, ways: ways, nsets: uint64(nsets)}
	if nsets&(nsets-1) == 0 {
		a.setMask = uint64(nsets - 1)
	}
	return a
}

func (a *array) setOf(lineAddr uint64) []line {
	if a.setMask != 0 {
		return a.sets[lineAddr&a.setMask]
	}
	return a.sets[lineAddr%a.nsets]
}

// lookup finds lineAddr and returns its slot, or nil. A hit refreshes LRU.
func (a *array) lookup(lineAddr uint64) *line {
	set := a.setOf(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			a.tick++
			set[i].lru = a.tick
			return &set[i]
		}
	}
	return nil
}

// peek is lookup without the LRU refresh, for snoops and invariant checks.
func (a *array) peek(lineAddr uint64) *line {
	set := a.setOf(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// victim returns the slot a fill of lineAddr should use: an invalid way if
// one exists, otherwise the LRU way. The returned line still holds the
// victim's previous contents so the caller can write it back.
func (a *array) victim(lineAddr uint64) *line {
	set := a.setOf(lineAddr)
	var v *line
	for i := range set {
		if set[i].state == Invalid {
			return &set[i]
		}
		if v == nil || set[i].lru < v.lru {
			v = &set[i]
		}
	}
	return v
}

// install writes a new line into slot with the given tag and state and
// refreshes LRU.
func (a *array) install(slot *line, tag uint64, st State) {
	a.tick++
	*slot = line{tag: tag, state: st, lru: a.tick}
}

// invalidate drops lineAddr if present, returning its prior state.
func (a *array) invalidate(lineAddr uint64) State {
	if l := a.peek(lineAddr); l != nil {
		st := l.state
		l.state = Invalid
		return st
	}
	return Invalid
}

// forEachValid calls fn for every valid line in the array.
func (a *array) forEachValid(fn func(*line)) {
	for si := range a.sets {
		set := a.sets[si]
		for i := range set {
			if set[i].state != Invalid {
				fn(&set[i])
			}
		}
	}
}
