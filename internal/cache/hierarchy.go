package cache

import (
	"fmt"

	"fsml/internal/mem"
)

// Config sizes the hierarchy. The defaults mirror the paper's Xeon X5690
// (Westmere DP): 32 KiB 8-way L1D and 256 KiB 8-way L2 per core, 12 MiB
// 16-way shared inclusive L3.
type Config struct {
	L1Size, L1Ways int
	L2Size, L2Ways int
	L3Size, L3Ways int
	// Prefetch enables the L2 ascending-stream next-line prefetcher.
	Prefetch bool
	// LFBWindow is how many subsequent ops by the same core a demand fill
	// stays in a line-fill buffer before the line is usable from L1;
	// loads arriving in the window count MEM_LOAD_RETIRED.HIT_LFB.
	LFBWindow int
	// MSI selects the E-less MSI protocol: loads fill Shared even with
	// no other holders, so every first store pays an upgrade
	// transaction. Default (false) is MESI, as on the paper's hardware.
	// The protocol ablation quantifies what the Exclusive state buys.
	MSI bool
	// Sockets splits the cores across packages: a snoop answered by a
	// core on another socket pays the QPI round-trip on top of the
	// on-package latency, as on the paper's 2x6 Westmere DP. Zero or one
	// means a single package. Cores are striped contiguously: with 12
	// cores and 2 sockets, cores 0-5 share socket 0.
	Sockets int
	// LatRemote is the extra DRAM latency, in cycles, of a demand fill
	// whose page is homed on another socket's memory controller. Pages
	// interleave round-robin across sockets (the BIOS-default interleave
	// of the modeled DP platform), and each remote fill counts
	// MEM_UNCORE_RETIRED.REMOTE_DRAM at the requester. Zero — or a
	// single-socket Sockets — keeps the memory path socket-blind, which
	// is byte-identical to the pre-NUMA model.
	LatRemote int
}

// LatQPI is the extra cycle cost of a cross-socket snoop response.
const LatQPI = 45

// DefaultConfig returns the Westmere DP configuration.
func DefaultConfig() Config {
	return Config{
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		L3Size: 12 << 20, L3Ways: 16,
		Prefetch:  true,
		LFBWindow: 8,
	}
}

// pendingFill is an in-flight L1 fill held in a line-fill buffer.
type pendingFill struct {
	line    uint64
	readyAt uint64 // core op count at which the fill completes
	state   State  // L1 state to install
}

// priv is one core's private L1+L2 pair plus its fill/prefetch trackers.
type priv struct {
	l1, l2 *array
	// ops counts accesses issued by this core, the clock for LFB expiry.
	ops uint64
	// lfb holds in-flight demand fills (bounded, FIFO overflow completes
	// the oldest immediately, like running out of fill buffers).
	lfb []pendingFill
	// streams is the prefetcher's stream table: the last line touched by
	// each tracked ascending stream. A demand miss adjacent to an entry
	// extends that stream; otherwise it replaces the oldest entry.
	streams    [streamTableSize]uint64
	streamsLen int
	streamPos  int
}

// streamTableSize is how many concurrent ascending streams the L2
// prefetcher tracks per core (Westmere tracks 16 per L2).
const streamTableSize = 16

const lfbEntries = 10 // Westmere has 10 line fill buffers per core

// Hierarchy is the full coherent cache system shared by all simulated
// cores. It is not safe for concurrent use: the machine model serializes
// accesses deliberately, which is what makes runs reproducible.
type Hierarchy struct {
	cfg      Config
	ncores   int
	cores    []priv
	l3       *array
	counters []Counters
}

// New builds a hierarchy for ncores cores.
func New(cfg Config, ncores int) *Hierarchy {
	if ncores <= 0 || ncores > 64 {
		panic(fmt.Sprintf("cache: core count %d out of range [1,64]", ncores))
	}
	h := &Hierarchy{
		cfg:      cfg,
		ncores:   ncores,
		cores:    make([]priv, ncores),
		l3:       newArray(cfg.L3Size, cfg.L3Ways),
		counters: make([]Counters, ncores),
	}
	for i := range h.cores {
		h.cores[i] = priv{
			l1: newArray(cfg.L1Size, cfg.L1Ways),
			l2: newArray(cfg.L2Size, cfg.L2Ways),
		}
	}
	return h
}

// NumCores returns the core count.
func (h *Hierarchy) NumCores() int { return h.ncores }

// Counters returns core c's event bank. The machine model counts its
// non-cache events (instructions, TLB, stalls) into the same bank.
func (h *Hierarchy) Counters(c int) *Counters { return &h.counters[c] }

// TotalCounters returns the sum of all per-core banks.
func (h *Hierarchy) TotalCounters() Counters {
	var t Counters
	for i := range h.counters {
		t.AddAll(&h.counters[i])
	}
	return t
}

// ResetCounters zeroes all event banks without disturbing cache contents,
// which is how a measurement interval is delimited after warmup.
func (h *Hierarchy) ResetCounters() {
	for i := range h.counters {
		h.counters[i].Reset()
	}
}

func (h *Hierarchy) add(core int, e EvID, n uint64) { h.counters[core][e] += n }

// ---------------------------------------------------------------------------
// LFB handling

// drainLFB installs fills that have completed for core c.
func (h *Hierarchy) drainLFB(c int) {
	p := &h.cores[c]
	kept := p.lfb[:0]
	for _, f := range p.lfb {
		if f.readyAt <= p.ops {
			h.installL1(c, f.line, f.state)
		} else {
			kept = append(kept, f)
		}
	}
	p.lfb = kept
}

// findLFB returns the pending fill for lineAddr, if any.
func (p *priv) findLFB(lineAddr uint64) *pendingFill {
	for i := range p.lfb {
		if p.lfb[i].line == lineAddr {
			return &p.lfb[i]
		}
	}
	return nil
}

// completeLFB force-installs the pending fill for lineAddr (stores and
// invalidations cannot wait for the window to lapse).
func (h *Hierarchy) completeLFB(c int, lineAddr uint64) bool {
	p := &h.cores[c]
	for i := range p.lfb {
		if p.lfb[i].line == lineAddr {
			h.installL1(c, lineAddr, p.lfb[i].state)
			p.lfb = append(p.lfb[:i], p.lfb[i+1:]...)
			return true
		}
	}
	return false
}

// dropLFB discards a pending fill (coherence invalidation while in flight).
func (p *priv) dropLFB(lineAddr uint64) {
	for i := range p.lfb {
		if p.lfb[i].line == lineAddr {
			p.lfb = append(p.lfb[:i], p.lfb[i+1:]...)
			return
		}
	}
}

// queueFill places a completed offcore fill into the LFB window.
func (h *Hierarchy) queueFill(c int, lineAddr uint64, st State) {
	p := &h.cores[c]
	if h.cfg.LFBWindow <= 0 {
		h.installL1(c, lineAddr, st)
		return
	}
	if len(p.lfb) >= lfbEntries {
		// Out of fill buffers: retire the oldest entry now.
		h.installL1(c, p.lfb[0].line, p.lfb[0].state)
		p.lfb = p.lfb[1:]
	}
	p.lfb = append(p.lfb, pendingFill{line: lineAddr, readyAt: p.ops + uint64(h.cfg.LFBWindow), state: st})
}

// ---------------------------------------------------------------------------
// L1/L2 fills and evictions

// installL1 brings a line into core c's L1, evicting as needed. L1 state
// mirrors L2 state; L1 evictions are silent because L2 is inclusive and
// already holds the (possibly dirty) authoritative state.
func (h *Hierarchy) installL1(c int, lineAddr uint64, st State) {
	p := &h.cores[c]
	if l := p.l1.peek(lineAddr); l != nil {
		l.state = st
		return
	}
	slot := p.l1.victim(lineAddr)
	p.l1.install(slot, lineAddr, st)
	h.add(c, EvL1Replacement, 1)
}

// installL2 brings a line into core c's L2 with the given state, handling
// victim writeback, L1 back-invalidation, and directory upkeep.
// When pf is true the fill is attributed to the prefetcher.
func (h *Hierarchy) installL2(c int, lineAddr uint64, st State, pf bool) *line {
	p := &h.cores[c]
	slot := p.l2.victim(lineAddr)
	if slot.state != Invalid {
		h.evictL2Victim(c, slot)
	}
	p.l2.install(slot, lineAddr, st)
	slot.prefetched = pf
	h.add(c, EvL2Fill, 1)
	if pf {
		h.add(c, EvL2Prefetches, 1)
	}
	switch st {
	case Shared:
		h.add(c, EvL2LinesInS, 1)
	case Exclusive:
		h.add(c, EvL2LinesInE, 1)
	case Modified:
		h.add(c, EvL2LinesInM, 1)
	}
	h.setDirBit(lineAddr, c)
	return slot
}

// evictL2Victim writes back / invalidates one valid L2 line of core c.
func (h *Hierarchy) evictL2Victim(c int, v *line) {
	p := &h.cores[c]
	// Inclusivity: the L1 copy and any pending fill must go too.
	p.l1.invalidate(v.tag)
	p.dropLFB(v.tag)
	if v.state == Modified {
		h.add(c, EvL2LinesOutDirty, 1)
		h.markL3Dirty(v.tag)
	} else {
		h.add(c, EvL2LinesOutClean, 1)
	}
	h.clearDirBit(v.tag, c)
	v.state = Invalid
}

// ---------------------------------------------------------------------------
// L3 directory

// l3Entry returns the L3 slot for lineAddr, or nil.
func (h *Hierarchy) l3Entry(lineAddr uint64) *line { return h.l3.peek(lineAddr) }

// ensureL3 guarantees an L3 slot for lineAddr, filling from memory
// semantics (the caller counts the memory read). Returns the slot.
func (h *Hierarchy) ensureL3(c int, lineAddr uint64) *line {
	if l := h.l3.lookup(lineAddr); l != nil {
		return l
	}
	slot := h.l3.victim(lineAddr)
	if slot.state != Invalid {
		h.evictL3Victim(c, slot)
	}
	h.l3.install(slot, lineAddr, Exclusive) // L3 state is just valid/dirty
	h.add(c, EvL3LinesIn, 1)
	return slot
}

// evictL3Victim removes one valid L3 line: back-invalidates every private
// copy (inclusive L3) and writes dirty data to memory. Attribution of the
// uncore events goes to the requesting core c, as on real hardware where
// the L3 miss that caused the eviction belongs to the requester.
func (h *Hierarchy) evictL3Victim(c int, v *line) {
	dirty := v.state == Modified
	for hc := 0; hc < h.ncores; hc++ {
		if v.mask&(1<<uint(hc)) == 0 {
			continue
		}
		p := &h.cores[hc]
		p.dropLFB(v.tag)
		p.l1.invalidate(v.tag)
		if st := p.l2.invalidate(v.tag); st == Modified {
			dirty = true
			h.add(hc, EvL2LinesOutDirty, 1)
		}
	}
	if dirty {
		h.add(c, EvMemWrites, 1)
	}
	h.add(c, EvL3LinesOut, 1)
	v.state = Invalid
	v.mask = 0
}

// markL3Dirty records that L3 now holds data newer than memory. The line
// is present by inclusivity whenever a private cache writes back to it.
func (h *Hierarchy) markL3Dirty(lineAddr uint64) {
	if l := h.l3.peek(lineAddr); l != nil {
		l.state = Modified
	}
}

func (h *Hierarchy) setDirBit(lineAddr uint64, c int) {
	if l := h.l3.peek(lineAddr); l != nil {
		l.mask |= 1 << uint(c)
	}
}

func (h *Hierarchy) clearDirBit(lineAddr uint64, c int) {
	if l := h.l3.peek(lineAddr); l != nil {
		l.mask &^= 1 << uint(c)
	}
}

// ---------------------------------------------------------------------------
// Snooping

// snoopResult summarizes the peer responses to one offcore request.
type snoopResult struct {
	hadM, hadE, hadS bool
	// crossSocket is set when any responding holder lives on a different
	// socket than the requester.
	crossSocket bool
}

// socketOf maps a core to its package.
func (h *Hierarchy) socketOf(c int) int {
	if h.cfg.Sockets <= 1 {
		return 0
	}
	per := (h.ncores + h.cfg.Sockets - 1) / h.cfg.Sockets
	return c / per
}

// linesPerPageShift converts a line address to its 4 KiB page index
// (64-byte lines, 64 lines per page).
const linesPerPageShift = 6

// homeSocket maps a line to the socket whose memory controller owns its
// page: pages interleave round-robin across sockets.
func (h *Hierarchy) homeSocket(lineAddr uint64) int {
	if h.cfg.Sockets <= 1 {
		return 0
	}
	return int((lineAddr >> linesPerPageShift) % uint64(h.cfg.Sockets))
}

// memLatency is the DRAM latency core c pays for a demand fill of
// lineAddr. With a remote latency domain configured, a fill homed on
// another socket pays LatRemote on top and counts EvRemoteDRAM.
func (h *Hierarchy) memLatency(c int, lineAddr uint64) int {
	if h.cfg.LatRemote > 0 && h.cfg.Sockets > 1 && h.homeSocket(lineAddr) != h.socketOf(c) {
		h.add(c, EvRemoteDRAM, 1)
		return LatMem + h.cfg.LatRemote
	}
	return LatMem
}

// qpiPenalty is the extra latency when a snoop crossed sockets.
func (h *Hierarchy) qpiPenalty(res snoopResult) int {
	if res.crossSocket && (res.hadM || res.hadE || res.hadS) {
		return LatQPI
	}
	return 0
}

// snoop interrogates the directory for lineAddr on behalf of core c.
// For an RFO every peer copy is invalidated; for a read, M and E owners
// are downgraded to Shared. Snoop responses are counted at the requester,
// matching SNOOP_RESPONSE.* semantics on Westmere.
func (h *Hierarchy) snoop(c int, lineAddr uint64, rfo bool) snoopResult {
	var res snoopResult
	l3l := h.l3.peek(lineAddr)
	if l3l == nil {
		return res
	}
	for hc := 0; hc < h.ncores; hc++ {
		if hc == c || l3l.mask&(1<<uint(hc)) == 0 {
			continue
		}
		p := &h.cores[hc]
		l2l := p.l2.peek(lineAddr)
		if l2l == nil {
			// Directory bit without a cached copy cannot happen; the
			// invariant checker enforces it. Treat defensively as a miss.
			h.add(c, EvSnoopMiss, 1)
			l3l.mask &^= 1 << uint(hc)
			continue
		}
		switch l2l.state {
		case Modified:
			res.hadM = true
			h.add(c, EvSnoopHitM, 1)
			h.add(c, EvUncoreOtherCoreHITM, 1)
			h.markL3Dirty(lineAddr)
		case Exclusive:
			res.hadE = true
			h.add(c, EvSnoopHitE, 1)
		case Shared:
			res.hadS = true
			h.add(c, EvSnoopHit, 1)
		}
		if h.socketOf(hc) != h.socketOf(c) {
			res.crossSocket = true
		}
		if rfo {
			p.dropLFB(lineAddr)
			p.l1.invalidate(lineAddr)
			p.l2.invalidate(lineAddr)
			l3l.mask &^= 1 << uint(hc)
		} else if l2l.state == Modified || l2l.state == Exclusive {
			l2l.state = Shared
			if l1l := p.l1.peek(lineAddr); l1l != nil {
				l1l.state = Shared
			}
			if f := p.findLFB(lineAddr); f != nil {
				f.state = Shared
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Demand access paths

// Load simulates a data load by core c at addr and returns its latency in
// cycles (excluding any DTLB walk, which the machine models).
func (h *Hierarchy) Load(c int, addr uint64) int {
	p := &h.cores[c]
	p.ops++
	h.drainLFB(c)
	h.add(c, EvLoads, 1)
	lineAddr := mem.LineOf(addr)

	if l := p.l1.lookup(lineAddr); l != nil {
		h.add(c, EvL1Hit, 1)
		return LatL1
	}
	if f := p.findLFB(lineAddr); f != nil {
		// The line's fill is in flight; the load is satisfied from the
		// fill buffer rather than recorded as a fresh miss.
		h.add(c, EvL1HitLFB, 1)
		return LatLFB
	}
	h.add(c, EvL1LoadMiss, 1)

	if l2l := p.l2.lookup(lineAddr); l2l != nil {
		h.add(c, EvL2Hit, 1)
		st := l2l.state
		if l2l.prefetched {
			l2l.prefetched = false
			h.add(c, EvL2PrefetchUseful, 1)
			h.continueStream(c, lineAddr)
		}
		h.installL1(c, lineAddr, st)
		return LatL2
	}

	// Offcore demand read.
	h.add(c, EvL2Miss, 1)
	h.add(c, EvL2LdMiss, 1)
	h.add(c, EvL2DemandI, 1)
	h.add(c, EvOffcoreDemandRD, 1)

	res := h.snoop(c, lineAddr, false)
	l3Present := h.l3.peek(lineAddr) != nil

	var lat int
	var st State
	switch {
	case res.hadM:
		lat, st = LatHITM, Shared
		h.add(c, EvL3Hit, 1)
	case res.hadE || res.hadS:
		lat, st = LatSnoop, Shared
		h.add(c, EvL3Hit, 1)
	case l3Present:
		lat, st = LatL3, Exclusive
		h.add(c, EvL3Hit, 1)
	default:
		lat, st = h.memLatency(c, lineAddr), Exclusive
		h.add(c, EvL3Miss, 1)
		h.add(c, EvMemReads, 1)
	}
	lat += h.qpiPenalty(res)
	if h.cfg.MSI && st == Exclusive {
		// MSI has no Exclusive state: clean fills are always Shared.
		st = Shared
	}
	h.ensureL3(c, lineAddr)
	h.installL2(c, lineAddr, st, false)
	h.setDirBit(lineAddr, c)
	h.queueFill(c, lineAddr, st)
	h.maybePrefetch(c, lineAddr)
	return lat
}

// Store simulates a data store by core c at addr and returns its latency
// in cycles as seen by the store buffer.
func (h *Hierarchy) Store(c int, addr uint64) int {
	p := &h.cores[c]
	p.ops++
	h.drainLFB(c)
	h.add(c, EvStores, 1)
	lineAddr := mem.LineOf(addr)

	// A store cannot complete against an in-flight fill; retire it first.
	h.completeLFB(c, lineAddr)

	if l1l := p.l1.lookup(lineAddr); l1l != nil {
		switch l1l.state {
		case Modified:
			h.add(c, EvL1Hit, 1)
			return LatL1
		case Exclusive:
			l1l.state = Modified
			if l2l := p.l2.peek(lineAddr); l2l != nil {
				l2l.state = Modified
			}
			h.add(c, EvL1Hit, 1)
			return LatL1
		case Shared:
			return h.upgrade(c, lineAddr)
		}
	}
	h.add(c, EvL1StoreMiss, 1)

	if l2l := p.l2.lookup(lineAddr); l2l != nil {
		pf := l2l.prefetched
		if pf {
			l2l.prefetched = false
			h.add(c, EvL2PrefetchUseful, 1)
		}
		if l2l.state == Shared {
			lat := h.upgrade(c, lineAddr)
			if pf {
				h.continueStream(c, lineAddr)
			}
			return lat
		}
		h.add(c, EvL2Hit, 1)
		l2l.state = Modified
		h.installL1(c, lineAddr, Modified)
		if pf {
			h.continueStream(c, lineAddr)
		}
		return LatL2
	}

	// Offcore RFO.
	h.add(c, EvL2Miss, 1)
	h.add(c, EvL2RFOMiss, 1)
	h.add(c, EvL2DemandI, 1)
	h.add(c, EvOffcoreRFO, 1)

	res := h.snoop(c, lineAddr, true)
	l3Present := h.l3.peek(lineAddr) != nil

	var lat int
	switch {
	case res.hadM:
		lat = LatHITM
		h.add(c, EvL3Hit, 1)
	case res.hadE || res.hadS:
		lat = LatSnoop
		h.add(c, EvL3Hit, 1)
	case l3Present:
		lat = LatL3
		h.add(c, EvL3Hit, 1)
	default:
		lat = h.memLatency(c, lineAddr)
		h.add(c, EvL3Miss, 1)
		h.add(c, EvMemReads, 1)
	}
	lat += h.qpiPenalty(res)
	h.ensureL3(c, lineAddr)
	h.markL3Dirty(lineAddr)
	h.installL2(c, lineAddr, Modified, false)
	h.setDirBit(lineAddr, c)
	h.installL1(c, lineAddr, Modified)
	return lat
}

// upgrade performs the S->M transition for a line core c holds Shared:
// an invalidation round on the bus, no data transfer.
func (h *Hierarchy) upgrade(c int, lineAddr uint64) int {
	p := &h.cores[c]
	h.add(c, EvL2RFOHitS, 1)
	h.snoop(c, lineAddr, true)
	if l2l := p.l2.peek(lineAddr); l2l != nil {
		l2l.state = Modified
	}
	if l1l := p.l1.peek(lineAddr); l1l != nil {
		l1l.state = Modified
	} else {
		h.installL1(c, lineAddr, Modified)
	}
	h.markL3Dirty(lineAddr)
	return LatUpgrade
}

// trackStream records a touch of lineAddr in the stream table and reports
// whether it extended an existing ascending stream.
func (p *priv) trackStream(lineAddr uint64) bool {
	for i := 0; i < p.streamsLen; i++ {
		if p.streams[i] == lineAddr-1 || p.streams[i] == lineAddr {
			p.streams[i] = lineAddr
			return true
		}
	}
	if p.streamsLen < streamTableSize {
		p.streams[p.streamsLen] = lineAddr
		p.streamsLen++
	} else {
		p.streams[p.streamPos] = lineAddr
		p.streamPos = (p.streamPos + 1) % streamTableSize
	}
	return false
}

// maybePrefetch runs the L2 stream prefetcher after a demand miss at
// lineAddr by core c: once a miss extends a tracked ascending stream, the
// next line is fetched ahead.
func (h *Hierarchy) maybePrefetch(c int, lineAddr uint64) {
	p := &h.cores[c]
	if !p.trackStream(lineAddr) || !h.cfg.Prefetch {
		return
	}
	h.prefetchNext(c, lineAddr)
}

// continueStream keeps an established stream alive across demand hits on
// prefetched lines, the behaviour that lets a linear scan stay ahead of
// its own misses.
func (h *Hierarchy) continueStream(c int, lineAddr uint64) {
	p := &h.cores[c]
	p.trackStream(lineAddr)
	if h.cfg.Prefetch {
		h.prefetchNext(c, lineAddr)
	}
}

// prefetchNext fetches lineAddr+1 into L2 if no other core holds it.
func (h *Hierarchy) prefetchNext(c int, lineAddr uint64) {
	p := &h.cores[c]
	next := lineAddr + 1
	if p.l2.peek(next) != nil || p.findLFB(next) != nil {
		return
	}
	// Never steal a line another core holds: the real prefetcher drops
	// requests that would require a coherence transaction.
	if l3l := h.l3.peek(next); l3l != nil && l3l.mask&^(1<<uint(c)) != 0 {
		return
	}
	if h.l3.peek(next) == nil {
		h.add(c, EvMemReads, 1)
	}
	st := Exclusive
	if h.cfg.MSI {
		st = Shared
	}
	h.ensureL3(c, next)
	h.installL2(c, next, st, true)
}

// ---------------------------------------------------------------------------
// Invariants

// CheckInvariants verifies the coherence and inclusivity properties the
// rest of the system depends on. It is O(cache size) and meant for tests.
//
// Properties checked:
//  1. a line Modified in one core is Invalid everywhere else;
//  2. if any core holds a line Exclusive or Modified, no other core holds it;
//  3. every L1 line is present in the same core's L2 with the same state;
//  4. every L2 line is present in L3, and its directory bit is set;
//  5. every set directory bit corresponds to a real L2 copy.
func (h *Hierarchy) CheckInvariants() error {
	type holder struct {
		core  int
		state State
	}
	holders := make(map[uint64][]holder)
	for c := range h.cores {
		p := &h.cores[c]
		var err error
		p.l2.forEachValid(func(l *line) {
			if err != nil {
				return
			}
			holders[l.tag] = append(holders[l.tag], holder{c, l.state})
			l3l := h.l3.peek(l.tag)
			if l3l == nil {
				err = fmt.Errorf("inclusivity: line %#x in core %d L2 but not in L3", l.tag, c)
				return
			}
			if l3l.mask&(1<<uint(c)) == 0 {
				err = fmt.Errorf("directory: line %#x in core %d L2 but dir bit clear", l.tag, c)
			}
		})
		if err != nil {
			return err
		}
		p.l1.forEachValid(func(l *line) {
			if err != nil {
				return
			}
			l2l := p.l2.peek(l.tag)
			if l2l == nil {
				err = fmt.Errorf("inclusivity: line %#x in core %d L1 but not its L2", l.tag, c)
				return
			}
			if l2l.state != l.state {
				err = fmt.Errorf("state mismatch: line %#x core %d L1=%v L2=%v", l.tag, c, l.state, l2l.state)
			}
		})
		if err != nil {
			return err
		}
	}
	for tag, hs := range holders {
		if len(hs) < 2 {
			continue
		}
		for _, x := range hs {
			if x.state == Modified || x.state == Exclusive {
				return fmt.Errorf("coherence: line %#x held %v by core %d with %d total holders", tag, x.state, x.core, len(hs))
			}
		}
	}
	var err error
	h.l3.forEachValid(func(l *line) {
		if err != nil {
			return
		}
		for c := 0; c < h.ncores; c++ {
			if l.mask&(1<<uint(c)) != 0 && h.cores[c].l2.peek(l.tag) == nil {
				err = fmt.Errorf("directory: line %#x dir bit set for core %d without L2 copy", l.tag, c)
			}
		}
	})
	return err
}

// PeekState reports the MESI state of addr's line in core c's L2
// (Invalid if absent). Exposed for tests and the shadow tool.
func (h *Hierarchy) PeekState(c int, addr uint64) State {
	if l := h.cores[c].l2.peek(mem.LineOf(addr)); l != nil {
		return l.state
	}
	return Invalid
}
