package cache

import (
	"testing"
	"testing/quick"

	"fsml/internal/mem"
	"fsml/internal/xrand"
)

func testConfig() Config {
	// Small caches so evictions happen quickly in tests.
	return Config{
		L1Size: 1 << 10, L1Ways: 2,
		L2Size: 4 << 10, L2Ways: 4,
		L3Size: 32 << 10, L3Ways: 4,
		Prefetch:  true,
		LFBWindow: 8,
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", State(99): "?"}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestEvIDString(t *testing.T) {
	if got := EvSnoopHitM.String(); got != "SNOOP_RESPONSE.HITM" {
		t.Errorf("EvSnoopHitM.String() = %q", got)
	}
	if got := EvID(-1).String(); got != "EV_UNKNOWN" {
		t.Errorf("EvID(-1).String() = %q", got)
	}
	for e := EvID(0); e < NumEvents; e++ {
		if e.String() == "" {
			t.Errorf("event %d has no name", e)
		}
	}
}

func TestCountersAddAll(t *testing.T) {
	var a, b Counters
	a.Add(EvLoads, 3)
	b.Add(EvLoads, 4)
	b.Add(EvStores, 1)
	a.AddAll(&b)
	if a.Get(EvLoads) != 7 || a.Get(EvStores) != 1 {
		t.Errorf("AddAll: got loads=%d stores=%d", a.Get(EvLoads), a.Get(EvStores))
	}
	a.Reset()
	if a.Get(EvLoads) != 0 {
		t.Errorf("Reset did not zero counters")
	}
}

func TestColdLoadGoesToMemory(t *testing.T) {
	h := New(testConfig(), 2)
	lat := h.Load(0, 0x10000)
	if lat != LatMem {
		t.Errorf("cold load latency = %d, want %d", lat, LatMem)
	}
	c := h.Counters(0)
	for _, ev := range []EvID{EvL1LoadMiss, EvL2Miss, EvL2LdMiss, EvL2DemandI, EvOffcoreDemandRD, EvL3Miss, EvMemReads, EvL2Fill, EvL2LinesInE} {
		if c.Get(ev) != 1 {
			t.Errorf("after cold load, %v = %d, want 1", ev, c.Get(ev))
		}
	}
}

func TestLoadHitAfterFill(t *testing.T) {
	cfg := testConfig()
	cfg.LFBWindow = 0 // immediate fills for this test
	h := New(cfg, 1)
	h.Load(0, 0x10000)
	lat := h.Load(0, 0x10000)
	if lat != LatL1 {
		t.Errorf("second load latency = %d, want L1 hit %d", lat, LatL1)
	}
	if h.Counters(0).Get(EvL1Hit) != 1 {
		t.Errorf("EvL1Hit = %d, want 1", h.Counters(0).Get(EvL1Hit))
	}
}

func TestHitLFBWithinWindow(t *testing.T) {
	h := New(testConfig(), 1)
	h.Load(0, 0x10000)
	lat := h.Load(0, 0x10008) // same line, next word, inside the window
	if lat != LatLFB {
		t.Errorf("in-window load latency = %d, want LFB %d", lat, LatLFB)
	}
	if h.Counters(0).Get(EvL1HitLFB) != 1 {
		t.Errorf("EvL1HitLFB = %d, want 1", h.Counters(0).Get(EvL1HitLFB))
	}
}

func TestLFBDrainsAfterWindow(t *testing.T) {
	cfg := testConfig()
	cfg.LFBWindow = 2
	h := New(cfg, 1)
	h.Load(0, 0x10000)
	// Two unrelated ops let the fill complete.
	h.Load(0, 0x20000)
	h.Load(0, 0x30000)
	lat := h.Load(0, 0x10000)
	if lat != LatL1 {
		t.Errorf("post-window load latency = %d, want L1 hit %d", lat, LatL1)
	}
}

func TestStoreToLFBPendingLineCompletesFill(t *testing.T) {
	h := New(testConfig(), 1)
	h.Load(0, 0x10000)
	// Store while the fill is pending: must force-complete and upgrade.
	h.Store(0, 0x10000)
	if st := h.PeekState(0, 0x10000); st != Modified {
		t.Errorf("state after store = %v, want M", st)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreColdGetsModified(t *testing.T) {
	h := New(testConfig(), 2)
	lat := h.Store(0, 0x10000)
	if lat != LatMem {
		t.Errorf("cold store latency = %d, want %d", lat, LatMem)
	}
	if st := h.PeekState(0, 0x10000); st != Modified {
		t.Errorf("state = %v, want M", st)
	}
	if h.Counters(0).Get(EvL2LinesInM) != 1 {
		t.Errorf("EvL2LinesInM = %d, want 1", h.Counters(0).Get(EvL2LinesInM))
	}
}

func TestReadSharingGivesSharedCopies(t *testing.T) {
	h := New(testConfig(), 2)
	h.Load(0, 0x10000)
	lat := h.Load(1, 0x10000)
	if lat != LatSnoop {
		t.Errorf("peer load latency = %d, want snoop %d", lat, LatSnoop)
	}
	if st := h.PeekState(0, 0x10000); st != Shared {
		t.Errorf("core 0 state = %v, want S (downgraded from E)", st)
	}
	if st := h.PeekState(1, 0x10000); st != Shared {
		t.Errorf("core 1 state = %v, want S", st)
	}
	// Requester observed a HITE response.
	if h.Counters(1).Get(EvSnoopHitE) != 1 {
		t.Errorf("EvSnoopHitE at requester = %d, want 1", h.Counters(1).Get(EvSnoopHitE))
	}
}

func TestWriteWritePingPongProducesHITM(t *testing.T) {
	h := New(testConfig(), 2)
	addr0, addr1 := uint64(0x10000), uint64(0x10008) // same line, different words
	h.Store(0, addr0)
	for i := 0; i < 100; i++ {
		h.Store(1, addr1)
		h.Store(0, addr0)
	}
	hitm := h.Counters(0).Get(EvSnoopHitM) + h.Counters(1).Get(EvSnoopHitM)
	if hitm < 190 {
		t.Errorf("ping-pong HITM count = %d, want ~200", hitm)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPaddedWritesProduceNoHITM(t *testing.T) {
	h := New(testConfig(), 2)
	h.Store(0, 0x10000)
	h.Store(1, 0x10000+mem.LineSize)
	for i := 0; i < 100; i++ {
		h.Store(0, 0x10000)
		h.Store(1, 0x10000+mem.LineSize)
	}
	hitm := h.Counters(0).Get(EvSnoopHitM) + h.Counters(1).Get(EvSnoopHitM)
	if hitm != 0 {
		t.Errorf("padded writes HITM = %d, want 0", hitm)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	h := New(testConfig(), 2)
	h.Load(0, 0x10000)
	h.Load(1, 0x10000) // both S now
	lat := h.Store(0, 0x10000)
	if lat != LatUpgrade {
		t.Errorf("upgrade latency = %d, want %d", lat, LatUpgrade)
	}
	if h.Counters(0).Get(EvL2RFOHitS) != 1 {
		t.Errorf("EvL2RFOHitS = %d, want 1", h.Counters(0).Get(EvL2RFOHitS))
	}
	if st := h.PeekState(1, 0x10000); st != Invalid {
		t.Errorf("peer state after upgrade = %v, want I", st)
	}
	if st := h.PeekState(0, 0x10000); st != Modified {
		t.Errorf("writer state = %v, want M", st)
	}
}

func TestRFOInvalidatesModifiedPeer(t *testing.T) {
	h := New(testConfig(), 2)
	h.Store(0, 0x10000)
	lat := h.Store(1, 0x10000)
	if lat != LatHITM {
		t.Errorf("RFO against M peer latency = %d, want HITM %d", lat, LatHITM)
	}
	if st := h.PeekState(0, 0x10000); st != Invalid {
		t.Errorf("old owner state = %v, want I", st)
	}
	if st := h.PeekState(1, 0x10000); st != Modified {
		t.Errorf("new owner state = %v, want M", st)
	}
}

func TestLoadFromModifiedPeerDowngrades(t *testing.T) {
	h := New(testConfig(), 2)
	h.Store(0, 0x10000)
	lat := h.Load(1, 0x10000)
	if lat != LatHITM {
		t.Errorf("load vs M peer latency = %d, want HITM %d", lat, LatHITM)
	}
	if st := h.PeekState(0, 0x10000); st != Shared {
		t.Errorf("old owner state = %v, want S", st)
	}
	if h.Counters(1).Get(EvSnoopHitM) != 1 {
		t.Errorf("requester HITM count = %d, want 1", h.Counters(1).Get(EvSnoopHitM))
	}
}

func TestEvictionWritesBackDirtyLines(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetch = false
	cfg.LFBWindow = 0
	h := New(cfg, 1)
	// Dirty enough distinct lines to overflow both the 4 KiB L2 (64
	// lines) and the 32 KiB L3 (512 lines).
	n := 2048
	for i := 0; i < n; i++ {
		h.Store(0, 0x100000+uint64(i)*mem.LineSize)
	}
	if h.Counters(0).Get(EvL2LinesOutDirty) == 0 {
		t.Errorf("no dirty L2 evictions after overflowing L2 with stores")
	}
	if h.Counters(0).Get(EvMemWrites) == 0 {
		t.Errorf("no memory writes after overflowing L3 with dirty lines")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetcherFillsAscendingStream(t *testing.T) {
	cfg := testConfig()
	cfg.LFBWindow = 0
	h := New(cfg, 1)
	// Touch three consecutive lines to establish a stream.
	for i := 0; i < 3; i++ {
		h.Load(0, 0x10000+uint64(i)*mem.LineSize)
	}
	if h.Counters(0).Get(EvL2Prefetches) == 0 {
		t.Errorf("ascending stream triggered no prefetches")
	}
	// The 4th line should now be an L2 hit thanks to the prefetcher.
	lat := h.Load(0, 0x10000+3*mem.LineSize)
	if lat != LatL2 {
		t.Errorf("prefetched line load latency = %d, want L2 %d", lat, LatL2)
	}
	if h.Counters(0).Get(EvL2PrefetchUseful) == 0 {
		t.Errorf("prefetch hit not counted as useful")
	}
}

func TestPrefetcherRespectsPeerOwnership(t *testing.T) {
	cfg := testConfig()
	cfg.LFBWindow = 0
	h := New(cfg, 2)
	// Core 1 owns the line the stream would prefetch.
	target := uint64(0x10000 + 3*mem.LineSize)
	h.Store(1, target)
	for i := 0; i < 3; i++ {
		h.Load(0, 0x10000+uint64(i)*mem.LineSize)
	}
	if st := h.PeekState(1, target); st != Modified {
		t.Errorf("prefetcher stole a Modified peer line (state now %v)", st)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTotalCountersSumsCores(t *testing.T) {
	h := New(testConfig(), 2)
	h.Load(0, 0x10000)
	h.Load(1, 0x20000)
	tot := h.TotalCounters()
	if tot.Get(EvLoads) != 2 {
		t.Errorf("TotalCounters loads = %d, want 2", tot.Get(EvLoads))
	}
	h.ResetCounters()
	tot = h.TotalCounters()
	if tot.Get(EvLoads) != 0 {
		t.Errorf("ResetCounters left nonzero counts")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New with 0 cores did not panic")
		}
	}()
	New(testConfig(), 0)
}

func TestNewArrayPanicsOnZeroSets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("newArray with zero sets did not panic")
		}
	}()
	newArray(mem.LineSize/2, 1)
}

func TestNonPowerOfTwoSetCount(t *testing.T) {
	// 3 sets x 1 way: the modulo indexing path.
	a := newArray(3*mem.LineSize, 1)
	for i := uint64(0); i < 9; i++ {
		slot := a.victim(i)
		a.install(slot, i, Exclusive)
	}
	for i := uint64(6); i < 9; i++ {
		if a.peek(i) == nil {
			t.Errorf("line %d missing after install", i)
		}
	}
}

// TestInvariantsUnderRandomTraffic is the core property-based test: any
// interleaving of loads and stores from any cores over a small address
// pool must preserve MESI safety, inclusivity and directory accuracy.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := xrand.New(seed)
		ncores := 1 + rng.Intn(4)
		h := New(testConfig(), ncores)
		nops := 200 + int(opsRaw)%800
		for i := 0; i < nops; i++ {
			core := rng.Intn(ncores)
			// 40 lines spanning multiple sets and pages.
			addr := 0x10000 + rng.Uint64n(40)*mem.LineSize + rng.Uint64n(8)*8
			if rng.Intn(2) == 0 {
				h.Load(core, addr)
			} else {
				h.Store(core, addr)
			}
		}
		return h.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyBounds checks every access returns one of the architectural
// latencies, under random traffic.
func TestLatencyBounds(t *testing.T) {
	valid := map[int]bool{LatL1: true, LatLFB: true, LatL2: true, LatL3: true,
		LatSnoop: true, LatHITM: true, LatUpgrade: true, LatMem: true}
	rng := xrand.New(7)
	h := New(testConfig(), 3)
	for i := 0; i < 3000; i++ {
		core := rng.Intn(3)
		addr := 0x10000 + rng.Uint64n(64)*mem.LineSize
		var lat int
		if rng.Intn(2) == 0 {
			lat = h.Load(core, addr)
		} else {
			lat = h.Store(core, addr)
		}
		if !valid[lat] {
			t.Fatalf("op %d returned non-architectural latency %d", i, lat)
		}
	}
}

// TestSnoopMissCounterStaysZero ensures the defensive stale-directory path
// never triggers under normal operation.
func TestSnoopMissCounterStaysZero(t *testing.T) {
	rng := xrand.New(11)
	h := New(testConfig(), 4)
	for i := 0; i < 5000; i++ {
		core := rng.Intn(4)
		addr := 0x10000 + rng.Uint64n(100)*mem.LineSize
		if rng.Intn(3) == 0 {
			h.Store(core, addr)
		} else {
			h.Load(core, addr)
		}
	}
	tot := h.TotalCounters()
	if tot.Get(EvSnoopMiss) != 0 {
		t.Errorf("EvSnoopMiss = %d; directory went stale", tot.Get(EvSnoopMiss))
	}
}

// TestMSIProtocolHasNoExclusive: under MSI, a sole-owner load fills
// Shared, and the subsequent store pays an upgrade (RFO-hit-S) instead
// of MESI's silent E->M transition.
func TestMSIProtocolHasNoExclusive(t *testing.T) {
	cfg := testConfig()
	cfg.MSI = true
	cfg.LFBWindow = 0
	h := New(cfg, 2)
	h.Load(0, 0x10000)
	if st := h.PeekState(0, 0x10000); st != Shared {
		t.Fatalf("MSI load filled %v, want S", st)
	}
	lat := h.Store(0, 0x10000)
	if lat != LatUpgrade {
		t.Errorf("MSI first store latency = %d, want upgrade %d", lat, LatUpgrade)
	}
	if h.Counters(0).Get(EvL2RFOHitS) != 1 {
		t.Errorf("MSI upgrade not counted as RFO-hit-S")
	}
	// MESI reference: same sequence is a silent E->M.
	cfg.MSI = false
	h2 := New(cfg, 2)
	h2.Load(0, 0x10000)
	if lat := h2.Store(0, 0x10000); lat != LatL1 {
		t.Errorf("MESI first store latency = %d, want L1 hit %d", lat, LatL1)
	}
}

// TestMSIPreservesCoherenceInvariants runs random traffic under MSI.
func TestMSIPreservesCoherenceInvariants(t *testing.T) {
	cfg := testConfig()
	cfg.MSI = true
	rng := xrand.New(31)
	h := New(cfg, 4)
	for i := 0; i < 5000; i++ {
		core := rng.Intn(4)
		addr := 0x10000 + rng.Uint64n(60)*mem.LineSize
		if rng.Intn(3) == 0 {
			h.Store(core, addr)
		} else {
			h.Load(core, addr)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// No line may ever be Exclusive under MSI.
	for c := 0; c < 4; c++ {
		for l := uint64(0); l < 60; l++ {
			if st := h.PeekState(c, 0x10000+l*mem.LineSize); st == Exclusive {
				t.Fatalf("Exclusive state %v under MSI at core %d line %d", st, c, l)
			}
		}
	}
}

// TestCrossSocketSnoopPenalty: with two sockets, dirty ping-pong between
// cores on different packages pays the QPI round-trip that same-package
// cores avoid.
func TestCrossSocketSnoopPenalty(t *testing.T) {
	cfg := testConfig()
	cfg.Sockets = 2
	h := New(cfg, 4) // sockets: {0,1} and {2,3}
	h.Store(0, 0x10000)
	if lat := h.Store(2, 0x10000); lat != LatHITM+LatQPI {
		t.Errorf("cross-socket RFO latency = %d, want %d", lat, LatHITM+LatQPI)
	}
	if lat := h.Store(3, 0x10000); lat != LatHITM {
		t.Errorf("same-socket RFO latency = %d, want %d (no QPI)", lat, LatHITM)
	}
	// Clean cross-socket read sharing also pays.
	h2 := New(cfg, 4)
	h2.Load(0, 0x20000)
	if lat := h2.Load(2, 0x20000); lat != LatSnoop+LatQPI {
		t.Errorf("cross-socket clean snoop latency = %d, want %d", lat, LatSnoop+LatQPI)
	}
}

func TestSingleSocketHasNoPenalty(t *testing.T) {
	h := New(testConfig(), 4)
	h.Store(0, 0x10000)
	if lat := h.Store(3, 0x10000); lat != LatHITM {
		t.Errorf("single-socket RFO latency = %d, want %d", lat, LatHITM)
	}
}

func TestSocketOfStriping(t *testing.T) {
	cfg := testConfig()
	cfg.Sockets = 2
	h := New(cfg, 12)
	for c := 0; c < 6; c++ {
		if h.socketOf(c) != 0 {
			t.Errorf("core %d on socket %d, want 0", c, h.socketOf(c))
		}
	}
	for c := 6; c < 12; c++ {
		if h.socketOf(c) != 1 {
			t.Errorf("core %d on socket %d, want 1", c, h.socketOf(c))
		}
	}
}

func TestCounterWidthTaps(t *testing.T) {
	const bits = 24
	max := uint64(1)<<bits - 1
	cases := []struct{ in, clamp, wrap uint64 }{
		{0, 0, 0},
		{max, max, max},
		{max + 1, max, 0},
		{3*max + 7, max, (3*max + 7) & max},
	}
	for _, c := range cases {
		if got := ClampCounter(c.in, bits); got != c.clamp {
			t.Errorf("ClampCounter(%d) = %d, want %d", c.in, got, c.clamp)
		}
		if got := WrapCounter(c.in, bits); got != c.wrap {
			t.Errorf("WrapCounter(%d) = %d, want %d", c.in, got, c.wrap)
		}
	}
	// 64-bit counters are transparent.
	if got := ClampCounter(1<<63, 64); got != 1<<63 {
		t.Errorf("ClampCounter 64-bit clamped: %d", got)
	}
	if got := WrapCounter(1<<63, 64); got != 1<<63 {
		t.Errorf("WrapCounter 64-bit wrapped: %d", got)
	}
}
