package resilience

// The circuit breaker. A guarded operation (lazy detector training, in
// the serving layer) reports each outcome; after Threshold consecutive
// failures the breaker opens and callers fail fast instead of paying
// for an operation that keeps failing. After the cooldown one caller is
// let through as a half-open probe: its success closes the breaker, its
// failure re-opens it for another cooldown.
//
//	Closed --threshold consecutive failures--> Open
//	Open --cooldown elapsed--> HalfOpen (exactly one probe admitted)
//	HalfOpen --probe succeeds--> Closed
//	HalfOpen --probe fails--> Open

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Allow while the breaker is open (or
// while a half-open probe is already in flight).
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// Closed admits every caller (the healthy state).
	Closed BreakerState = iota
	// Open fails every caller fast until the cooldown elapses.
	Open
	// HalfOpen admits exactly one probe; everyone else fails fast.
	HalfOpen
)

// String renders the state for listings and logs.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// Breaker is a consecutive-failure circuit breaker. Safe for concurrent
// use. The zero Breaker is not valid; use NewBreaker.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened

	onTransition func(from, to BreakerState)
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and probes again after cooldown. threshold < 1
// is clamped to 1; cooldown <= 0 means the next caller after an open
// always probes.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock overrides the breaker's time source (tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// OnTransition registers a callback invoked (under the breaker's lock,
// so keep it cheap) on every state change — the metrics hook.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// transitionLocked moves to a new state, firing the callback.
func (b *Breaker) transitionLocked(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Allow asks whether a caller may run the guarded operation. A nil
// return admits the caller, which must then report Success or Failure
// exactly once. ErrBreakerOpen fails the caller fast. While half-open,
// only the single probe that flipped the state is admitted.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.transitionLocked(HalfOpen)
			return nil // this caller is the probe
		}
		return ErrBreakerOpen
	default: // HalfOpen: the probe is already in flight
		return ErrBreakerOpen
	}
}

// Success reports a successful guarded operation: it closes a half-open
// breaker and resets the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != Closed {
		b.transitionLocked(Closed)
	}
}

// Failure reports a failed guarded operation: the probe's failure
// re-opens a half-open breaker; in the closed state the consecutive
// count grows and opens the breaker at the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.openedAt = b.now()
		b.transitionLocked(Open)
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.failures = 0
			b.openedAt = b.now()
			b.transitionLocked(Open)
		}
	case Open:
		// A straggler from before the open; the breaker is already
		// doing its job.
	}
}

// State reports the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter reports how long until an open breaker will admit its
// half-open probe (0 when not open or already due).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	if d := b.cooldown - b.now().Sub(b.openedAt); d > 0 {
		return d
	}
	return 0
}
