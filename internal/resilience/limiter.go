// Package resilience provides the overload-and-failure primitives of
// the serving layer: a bounded admission limiter with load shedding, a
// circuit breaker with a half-open probe, and a capped exponential
// backoff with deterministic seeded jitter.
//
// All three are policy mechanisms, not transports: the limiter knows
// nothing about HTTP, the breaker nothing about training, the backoff
// nothing about clients. internal/serve wires them to endpoints, the
// detector registry, and the ServeClient respectively, and surfaces
// every decision they make in /metrics.
//
// Determinism matters here exactly as much as in the simulator: the
// backoff's jitter is a pure function of (seed, attempt) via
// internal/xrand, so a retry schedule is reproducible from its seed —
// chaos tests can assert the exact delays a client will wait.
package resilience

import (
	"context"
	"errors"
	"time"
)

// ErrOverloaded is returned by Limiter.Acquire when no slot frees up
// within the shed window. Servers map it to HTTP 429.
var ErrOverloaded = errors.New("resilience: overloaded, request shed")

// Limiter is a bounded in-flight admission limiter. At most Capacity
// requests hold slots concurrently; an over-limit Acquire waits up to
// the shed window for a slot and is then shed with ErrOverloaded. The
// zero Limiter is not valid; use NewLimiter.
type Limiter struct {
	slots     chan struct{}
	shedAfter time.Duration
}

// NewLimiter returns a limiter admitting up to max concurrent holders.
// An over-limit Acquire waits at most shedAfter for a slot (<= 0 sheds
// immediately). max <= 0 disables limiting: Acquire always succeeds.
func NewLimiter(max int, shedAfter time.Duration) *Limiter {
	l := &Limiter{shedAfter: shedAfter}
	if max > 0 {
		l.slots = make(chan struct{}, max)
	}
	return l
}

// Acquire claims a slot, waiting up to the shed window. It returns a
// release function that must be called exactly once when the work
// holding the slot finishes. Acquire fails with ErrOverloaded when the
// window expires and with ctx.Err() when the caller gives up first.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l.slots == nil {
		return func() {}, nil
	}
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	default:
	}
	if l.shedAfter <= 0 {
		return nil, ErrOverloaded
	}
	timer := time.NewTimer(l.shedAfter)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	case <-timer.C:
		return nil, ErrOverloaded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release frees one slot.
func (l *Limiter) release() { <-l.slots }

// Inflight reports the currently held slots.
func (l *Limiter) Inflight() int {
	if l.slots == nil {
		return 0
	}
	return len(l.slots)
}

// Capacity reports the slot bound (0 = unlimited).
func (l *Limiter) Capacity() int {
	if l.slots == nil {
		return 0
	}
	return cap(l.slots)
}

// Saturated reports whether every slot is held right now — the
// overload signal /readyz exposes.
func (l *Limiter) Saturated() bool {
	if l.slots == nil {
		return false
	}
	return len(l.slots) == cap(l.slots)
}
