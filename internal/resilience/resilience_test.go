package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Limiter

// TestLimiterShedsAtCapacity fills the limiter and asserts the next
// immediate-shed Acquire fails with ErrOverloaded, then succeeds once a
// slot frees.
func TestLimiterShedsAtCapacity(t *testing.T) {
	l := NewLimiter(2, 0)
	rel1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !l.Saturated() || l.Inflight() != 2 || l.Capacity() != 2 {
		t.Fatalf("saturated=%t inflight=%d cap=%d, want true/2/2", l.Saturated(), l.Inflight(), l.Capacity())
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit Acquire = %v, want ErrOverloaded", err)
	}
	rel1()
	rel3, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("post-release Acquire = %v", err)
	}
	rel2()
	rel3()
	if l.Inflight() != 0 {
		t.Fatalf("inflight = %d after all releases, want 0", l.Inflight())
	}
}

// TestLimiterShedWindowAdmitsFreedSlot parks an over-limit Acquire in a
// generous shed window and frees a slot: the waiter must be admitted,
// not shed.
func TestLimiterShedWindowAdmitsFreedSlot(t *testing.T) {
	l := NewLimiter(1, 5*time.Second)
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := l.Acquire(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	rel()
	if err := <-got; err != nil {
		t.Fatalf("waiter = %v, want admission after release", err)
	}
}

// TestLimiterShedWindowExpires bounds the wait: a short window with no
// release sheds.
func TestLimiterShedWindowExpires(t *testing.T) {
	l := NewLimiter(1, 5*time.Millisecond)
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired wait = %v, want ErrOverloaded", err)
	}
}

// TestLimiterHonorsContext lets the caller give up before the shed
// window does.
func TestLimiterHonorsContext(t *testing.T) {
	l := NewLimiter(1, time.Hour)
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx-bounded Acquire = %v, want DeadlineExceeded", err)
	}
}

// TestLimiterUnlimited pins the max <= 0 escape hatch.
func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if _, err := l.Acquire(context.Background()); err != nil {
			t.Fatalf("unlimited Acquire %d = %v", i, err)
		}
	}
	if l.Saturated() || l.Capacity() != 0 {
		t.Errorf("unlimited limiter reports saturated=%t cap=%d", l.Saturated(), l.Capacity())
	}
}

// TestLimiterConcurrent hammers the limiter from many goroutines under
// -race and asserts the inflight bound is never exceeded.
func TestLimiterConcurrent(t *testing.T) {
	const capacity = 4
	l := NewLimiter(capacity, 50*time.Millisecond)
	var (
		mu      sync.Mutex
		cur, hi int
	)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := l.Acquire(context.Background())
			if err != nil {
				return // shed is a legal outcome under load
			}
			mu.Lock()
			cur++
			if cur > hi {
				hi = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			rel()
		}()
	}
	wg.Wait()
	if hi > capacity {
		t.Fatalf("observed %d concurrent holders, limit is %d", hi, capacity)
	}
}

// ---------------------------------------------------------------------------
// Breaker

// fakeClock is a settable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerStateMachine walks the full closed -> open -> half-open ->
// closed cycle, including a failed probe that re-opens.
func TestBreakerStateMachine(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, time.Minute)
	b.SetClock(clock.now)
	var transitions []string
	b.OnTransition(func(from, to BreakerState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	})

	// Two failures stay closed; the third opens.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow %d = %v", i, err)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Allow = %v, want ErrBreakerOpen", err)
	}
	if ra := b.RetryAfter(); ra != time.Minute {
		t.Fatalf("RetryAfter = %v, want 1m", ra)
	}

	// Cooldown elapses: one probe admitted, fellow callers still fast-fail.
	clock.advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow = %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second caller during probe = %v, want ErrBreakerOpen", err)
	}

	// Failed probe re-opens for another cooldown.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	clock.advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe Allow = %v", err)
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	// Closed again: failures must count from zero.
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state after 2 post-recovery failures = %v, want closed", b.State())
	}

	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

// TestBreakerSuccessResetsCount interleaves successes so the
// consecutive count never reaches the threshold.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow %d = %v", i, err)
		}
		b.Failure()
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow %d = %v", i, err)
		}
		b.Success()
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (failures never consecutive)", b.State())
	}
}

// ---------------------------------------------------------------------------
// Backoff

// TestBackoffDeterministic pins seed-reproducibility: the same seed
// yields the same schedule, a different seed a different one.
func TestBackoffDeterministic(t *testing.T) {
	a := Backoff{Seed: 7}.Schedule(8)
	b := Backoff{Seed: 7}.Schedule(8)
	c := Backoff{Seed: 8}.Schedule(8)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed schedules differ at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

// TestBackoffGrowsAndCaps checks the exponential envelope: jitter-free
// delays double exactly and stop at the cap.
func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

// TestBackoffJitterBounds keeps every jittered delay inside the
// documented ±Jitter envelope of its raw value.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.2, Seed: 3}
	raw := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: -1}
	for i := 0; i < 12; i++ {
		d, r := b.Delay(i), raw.Delay(i)
		lo := time.Duration(float64(r) * 0.8)
		hi := time.Duration(float64(r) * 1.2)
		if d < lo || d > hi {
			t.Errorf("Delay(%d) = %v, outside [%v, %v]", i, d, lo, hi)
		}
	}
}
