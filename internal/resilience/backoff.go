package resilience

// Capped exponential backoff with deterministic seeded jitter. Every
// delay is a pure function of (Seed, attempt): attempt n draws its
// jitter from an xrand stream derived via xrand.DeriveSeed(Seed, n),
// never from shared generator state, so a retry schedule replays
// bit-identically from its seed — the same property the simulator's
// batch engine relies on, applied to client behavior.

import (
	"time"

	"fsml/internal/xrand"
)

// Backoff shapes a retry schedule. The zero value is usable: 50ms base
// doubling to a 2s cap with ±20% jitter from seed 1.
type Backoff struct {
	// Base is the attempt-0 delay before jitter (default 50ms).
	Base time.Duration
	// Cap bounds the grown delay before jitter (default 2s).
	Cap time.Duration
	// Factor is the per-attempt growth (default 2; values < 1 are
	// treated as the default).
	Factor float64
	// Jitter is the relative jitter amplitude in [0, 1): attempt n's
	// delay is scaled by 1 + Jitter*(2u-1) with u uniform in [0, 1)
	// drawn deterministically from (Seed, n). Negative disables jitter;
	// zero selects the default 0.2.
	Jitter float64
	// Seed roots the jitter streams (default 1).
	Seed uint64
}

// withDefaults resolves the zero values.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return b
}

// Delay returns the wait before retry attempt (0-based): the capped
// exponential base*Factor^attempt, jittered deterministically from
// (Seed, attempt). Negative attempts are treated as 0.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(b.Base)
	for i := 0; i < attempt && d < float64(b.Cap); i++ {
		d *= b.Factor
	}
	if d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 {
		u := xrand.New(xrand.DeriveSeed(b.Seed, uint64(attempt))).Float64()
		d *= 1 + b.Jitter*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Schedule returns the first n delays — the exact waits a client with
// this backoff will sleep — for tests and logs.
func (b Backoff) Schedule(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = b.Delay(i)
	}
	return out
}
