package lifecycle

// The history ledger: one JSON file per lifecycle run (a retrain
// attempt and everything that followed it), written crash-safe through
// fsatomic beside the registry's model files. The ledger is what makes
// a 3am automatic promotion auditable at 9am: which drift evidence
// fired it, what the candidate scored in shadow, when the pointer
// flipped, and why it rolled back if it did.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"fsml/internal/fsatomic"
)

// Run is one ledger entry: a single pass through the retrain → shadow →
// promote/reject (→ rollback) cycle.
type Run struct {
	// Seq numbers runs monotonically across restarts (the ledger file
	// name carries it too).
	Seq int `json:"seq"`
	// Name is the logical detector the run serves.
	Name string `json:"name"`
	// Outcome is the run's terminal state: "promoted" (flip confirmed
	// through probation), "rejected" (lost the shadow budget),
	// "rolled-back" (regressed during probation), "failed" (training
	// error), "interrupted" (manager closed mid-run), or "in-flight".
	Outcome string `json:"outcome"`
	// Started and Finished bound the run.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Seed drove the retrain.
	Seed uint64 `json:"seed"`
	// Evidence is the drift evidence count that debounced the retrain.
	Evidence int `json:"evidence"`
	// CandidateKey and PreviousKey are the registry keys in play;
	// Version is the pointer version after a flip (0 if never flipped).
	CandidateKey string `json:"candidate_key,omitempty"`
	PreviousKey  string `json:"previous_key,omitempty"`
	Version      int    `json:"version,omitempty"`
	// TrainAccuracy is the candidate's cross-validation accuracy on its
	// fresh training set (0 when the trainer does not report one).
	TrainAccuracy float64 `json:"train_accuracy,omitempty"`
	// Shadow-scoring tallies. Agreement is (ShadowAgree +
	// CandidateWins) / ShadowTotal — the fraction the promote gate
	// compares against Spec.Agree.
	ShadowTotal    int     `json:"shadow_total"`
	ShadowAgree    int     `json:"shadow_agree"`
	ShadowDisagree int     `json:"shadow_disagree"`
	CandidateWins  int     `json:"candidate_wins"`
	Agreement      float64 `json:"agreement"`
	// Mean confidences over the shadow budget.
	MeanIncumbentConf float64 `json:"mean_incumbent_conf,omitempty"`
	MeanCandidateConf float64 `json:"mean_candidate_conf,omitempty"`
	// Probation tallies (post-flip scoring against the previous
	// version).
	ProbationTotal    int `json:"probation_total,omitempty"`
	ProbationDisagree int `json:"probation_disagree,omitempty"`
	// Shadow-path candidate-classify latency percentiles, in seconds —
	// the run's record of what mirroring cost.
	LatencyP50 float64 `json:"latency_p50,omitempty"`
	LatencyP95 float64 `json:"latency_p95,omitempty"`
	LatencyP99 float64 `json:"latency_p99,omitempty"`
	// Transitions logs every state change while the run was open.
	Transitions []Transition `json:"transitions,omitempty"`
	// Error carries the training failure for Outcome "failed".
	Error string `json:"error,omitempty"`
}

// Transition is one state change, with the reason it happened.
type Transition struct {
	From   State     `json:"from"`
	To     State     `json:"to"`
	At     time.Time `json:"at"`
	Reason string    `json:"reason"`
}

// ledger persists runs to a directory and keeps them in memory for
// Status/History. Not safe for concurrent use — the Manager serializes
// access under its own lock.
type ledger struct {
	dir   string
	limit int
	runs  []*Run // ascending Seq
}

// runFile names a run's ledger file.
func runFile(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("run-%06d.json", seq))
}

// loadLedger reads the existing run files (unreadable or corrupt files
// are skipped — the ledger is an audit trail, not a dependency) and
// positions the next sequence number after the highest on disk.
func loadLedger(dir string, limit int) *ledger {
	l := &ledger{dir: dir, limit: limit}
	if dir == "" {
		return l
	}
	glob, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil {
		return l
	}
	for _, path := range glob {
		blob, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var r Run
		if err := json.Unmarshal(blob, &r); err != nil || r.Seq < 1 {
			continue
		}
		l.runs = append(l.runs, &r)
	}
	sort.Slice(l.runs, func(i, j int) bool { return l.runs[i].Seq < l.runs[j].Seq })
	return l
}

// nextSeq returns the sequence number the next run should use.
func (l *ledger) nextSeq() int {
	if len(l.runs) == 0 {
		return 1
	}
	return l.runs[len(l.runs)-1].Seq + 1
}

// append records a new run and persists it.
func (l *ledger) append(r *Run) {
	l.runs = append(l.runs, r)
	l.persist(r)
	l.prune()
}

// persist writes one run crash-safe. Best effort: a failing disk
// degrades the audit trail, never the serving loop.
func (l *ledger) persist(r *Run) {
	if l.dir == "" {
		return
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return
	}
	_ = fsatomic.WriteFile(runFile(l.dir, r.Seq), blob, 0o644)
}

// prune drops the oldest runs beyond the retention limit, in memory and
// on disk.
func (l *ledger) prune() {
	if l.limit < 1 {
		return
	}
	for len(l.runs) > l.limit {
		old := l.runs[0]
		l.runs = l.runs[1:]
		if l.dir != "" {
			_ = os.Remove(runFile(l.dir, old.Seq))
		}
	}
}

// history returns up to limit most-recent runs, newest first
// (limit < 1 means all).
func (l *ledger) history(limit int) []Run {
	n := len(l.runs)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Run, 0, n)
	for i := len(l.runs) - 1; i >= len(l.runs)-n; i-- {
		out = append(out, *l.runs[i])
	}
	return out
}
