package lifecycle

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec is the operator-tunable shape of the self-healing loop: how much
// drift evidence triggers a retrain, how the candidate is shadowed, and
// what budget it must win to be promoted. The wire form is a compact
// comma-separated k=v list (the same shape as the stream window spec),
// so one CLI flag configures the whole loop:
//
//	alarms=3,window=2m,clear=2,every=1,shadow=64,agree=0.9,conf=0,probation=64,regress=0.25
//
// The empty string and "on" both mean DefaultSpec.
type Spec struct {
	// Alarms is the drift evidence count within Window that debounces a
	// retrain: each drift alarm counts one, and each classified window
	// observed while a drift episode is still open counts one more, so
	// one sustained excursion fires promptly while a lone blip never
	// does.
	Alarms int `json:"alarms"`
	// Window is the sliding evidence window.
	Window time.Duration `json:"window"`
	// Clear is the consecutive drift-cleared events (hysteresis) needed
	// to drop back to the stable state.
	Clear int `json:"clear"`
	// Every samples 1-in-Every authoritative classifications into the
	// shadow comparison (1 = every request).
	Every int `json:"every"`
	// Shadow is how many shadowed comparisons the candidate is scored
	// over before the promote/reject verdict.
	Shadow int `json:"shadow"`
	// Agree is the fraction of the Shadow budget the candidate must win
	// — agreements plus judged disagreements decided in its favor — to
	// be promoted.
	Agree float64 `json:"agree"`
	// Conf is the mean-confidence margin the candidate must hold over
	// the incumbent across the shadow budget (0 = at least match it;
	// negative tolerates a dip).
	Conf float64 `json:"conf"`
	// Probation is the shadowed comparisons the promoted version is
	// watched for after the flip, scored against the retained previous
	// version.
	Probation int `json:"probation"`
	// Regress is the disagreement fraction of the probation budget that
	// triggers automatic rollback (crossing Regress*Probation
	// disagreements rolls back immediately, without waiting out the
	// budget).
	Regress float64 `json:"regress"`
}

// DefaultSpec returns the documented defaults.
func DefaultSpec() Spec {
	return Spec{
		Alarms:    3,
		Window:    2 * time.Minute,
		Clear:     2,
		Every:     1,
		Shadow:    64,
		Agree:     0.9,
		Conf:      0,
		Probation: 64,
		Regress:   0.25,
	}
}

// SpecError reports one rejected field of a lifecycle spec string.
type SpecError struct {
	Field  string
	Value  string
	Reason string
}

func (e *SpecError) Error() string {
	if e.Value == "" {
		return fmt.Sprintf("lifecycle spec: %s: %s", e.Field, e.Reason)
	}
	return fmt.Sprintf("lifecycle spec: %s=%q: %s", e.Field, e.Value, e.Reason)
}

// ParseSpec parses the k=v wire form. Unset keys keep their defaults;
// unknown keys, bad values, and out-of-range numbers are typed
// *SpecError values naming the offending field.
func ParseSpec(s string) (Spec, error) {
	spec := DefaultSpec()
	s = strings.TrimSpace(s)
	if s == "" || s == "on" {
		return spec, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(part, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return Spec{}, &SpecError{Field: strings.TrimSpace(part), Reason: "want key=value"}
		}
		if seen[k] {
			return Spec{}, &SpecError{Field: k, Value: v, Reason: "duplicate key"}
		}
		seen[k] = true
		var err error
		switch k {
		case "alarms":
			spec.Alarms, err = parseCount(k, v)
		case "window":
			spec.Window, err = parseDuration(k, v)
		case "clear":
			spec.Clear, err = parseCount(k, v)
		case "every":
			spec.Every, err = parseCount(k, v)
		case "shadow":
			spec.Shadow, err = parseCount(k, v)
		case "agree":
			spec.Agree, err = parseFraction(k, v)
		case "conf":
			spec.Conf, err = parseMargin(k, v)
		case "probation":
			spec.Probation, err = parseCount(k, v)
		case "regress":
			spec.Regress, err = parseFraction(k, v)
		default:
			err = &SpecError{Field: k, Value: v, Reason: "unknown key (want " + strings.Join(specKeys(), "/") + ")"}
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// specKeys lists the accepted keys, sorted, for error messages.
func specKeys() []string {
	keys := []string{"alarms", "window", "clear", "every", "shadow", "agree", "conf", "probation", "regress"}
	sort.Strings(keys)
	return keys
}

func parseCount(field, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &SpecError{Field: field, Value: v, Reason: "not an integer"}
	}
	if n < 1 {
		return 0, &SpecError{Field: field, Value: v, Reason: "must be >= 1"}
	}
	return n, nil
}

func parseDuration(field, v string) (time.Duration, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, &SpecError{Field: field, Value: v, Reason: "not a duration (like 90s or 2m)"}
	}
	if d <= 0 {
		return 0, &SpecError{Field: field, Value: v, Reason: "must be positive"}
	}
	return d, nil
}

func parseFraction(field, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, &SpecError{Field: field, Value: v, Reason: "not a number"}
	}
	// The conjunctive form also rejects NaN (every NaN comparison is
	// false, so a plain out-of-range check would wave it through).
	if !(f >= 0 && f <= 1) {
		return 0, &SpecError{Field: field, Value: v, Reason: "must be in [0, 1]"}
	}
	return f, nil
}

func parseMargin(field, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, &SpecError{Field: field, Value: v, Reason: "not a number"}
	}
	if !(f >= -1 && f <= 1) {
		return 0, &SpecError{Field: field, Value: v, Reason: "must be in [-1, 1]"}
	}
	return f, nil
}

// Validate checks the cross-field invariants a parsed or hand-built
// spec must satisfy.
func (s Spec) Validate() error {
	switch {
	case s.Alarms < 1:
		return &SpecError{Field: "alarms", Reason: "must be >= 1"}
	case s.Window <= 0:
		return &SpecError{Field: "window", Reason: "must be positive"}
	case s.Clear < 1:
		return &SpecError{Field: "clear", Reason: "must be >= 1"}
	case s.Every < 1:
		return &SpecError{Field: "every", Reason: "must be >= 1"}
	case s.Shadow < 1:
		return &SpecError{Field: "shadow", Reason: "must be >= 1"}
	case !(s.Agree >= 0 && s.Agree <= 1):
		return &SpecError{Field: "agree", Reason: "must be in [0, 1]"}
	case !(s.Conf >= -1 && s.Conf <= 1):
		return &SpecError{Field: "conf", Reason: "must be in [-1, 1]"}
	case s.Probation < 1:
		return &SpecError{Field: "probation", Reason: "must be >= 1"}
	case !(s.Regress >= 0 && s.Regress <= 1):
		return &SpecError{Field: "regress", Reason: "must be in [0, 1]"}
	}
	return nil
}

// String renders the canonical wire form; ParseSpec(s.String()) == s
// for any valid spec (the round trip the fuzz target pins).
func (s Spec) String() string {
	return fmt.Sprintf("alarms=%d,window=%s,clear=%d,every=%d,shadow=%d,agree=%s,conf=%s,probation=%d,regress=%s",
		s.Alarms, s.Window, s.Clear, s.Every, s.Shadow,
		formatFloat(s.Agree), formatFloat(s.Conf), s.Probation, formatFloat(s.Regress))
}

// formatFloat renders a fraction without trailing-zero noise.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
