// Package lifecycle is the self-healing model loop: it watches the
// streaming layer's drift alarms, retrains a candidate detector when
// the evidence debounces, shadow-scores the candidate against the
// incumbent on live traffic, and flips the registry's active-version
// pointer when the candidate wins its budget — rolling back
// automatically if the promoted version regresses during probation.
//
// The state machine:
//
//	Stable ──drift alarm──▶ Drifting ──evidence ≥ alarms──▶ Retraining
//	Retraining ──train ok──▶ Shadowing      (train error → Drifting)
//	Shadowing ──budget won──▶ Promoting     (budget lost → Stable, rejected)
//	Promoting ──probation clean──▶ Stable   (promoted)
//	Promoting ──regression──▶ RolledBack ──hysteresis──▶ Stable
//
// Authoritative verdicts always come from the active version: the
// candidate only ever sees mirrored traffic until the pointer flips,
// and the flip itself is one registry update — atomic under the
// registry lock and persisted crash-safe. Every transition increments a
// counter, lands in the run ledger, and is visible on GET /v1/lifecycle.
package lifecycle

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fsml/internal/core"
	"fsml/internal/exps"
	"fsml/internal/machine"
	"fsml/internal/ml"
	"fsml/internal/pmu"
	"fsml/internal/shadow"
	"fsml/internal/stream"
	"fsml/internal/xrand"
)

// State is one node of the lifecycle state machine.
type State string

const (
	// StateStable: no open drift episode; the active version serves.
	StateStable State = "stable"
	// StateDrifting: a drift episode is open, evidence accumulating.
	StateDrifting State = "drifting"
	// StateRetraining: the debounce fired; a candidate is training.
	StateRetraining State = "retraining"
	// StateShadowing: the candidate scores mirrored traffic; the
	// incumbent stays authoritative.
	StateShadowing State = "shadowing"
	// StatePromoting: the pointer flipped; the new version is on
	// probation against the retained previous one.
	StatePromoting State = "promoting"
	// StateRolledBack: probation failed and the previous version was
	// restored; behaves like Drifting until the clear hysteresis.
	StateRolledBack State = "rolled-back"
)

// Lifecycle metric names, registered on the serving layer's /metrics
// sink. Every state transition is countable: retrains, promotions,
// rollbacks, and shadow-budget rejections each have their own counter,
// plus a catch-all transition counter and the shadow comparison
// tallies.
const (
	MetricRetrain        = "fsml_lifecycle_retrain_total"
	MetricPromote        = "fsml_lifecycle_promote_total"
	MetricRollback       = "fsml_lifecycle_rollback_total"
	MetricReject         = "fsml_lifecycle_reject_total"
	MetricTrainError     = "fsml_lifecycle_train_error_total"
	MetricShadowTotal    = "fsml_lifecycle_shadow_total"
	MetricShadowDisagree = "fsml_lifecycle_shadow_disagree_total"
	MetricTransition     = "fsml_lifecycle_transitions_total"
)

// Registry is the slice of the serve registry the lifecycle drives.
// *serve.Registry satisfies it; the interface lives here so the serve
// package can import lifecycle without a cycle.
type Registry interface {
	// Register inserts a trained detector under its content key.
	Register(det *core.Detector) (key string, existed bool, err error)
	// SetActive flips the name's active-version pointer (crash-safe).
	SetActive(name, key, previous string, version int) error
	// Active reads the name's pointer.
	Active(name string) (key, previous string, version int, ok bool)
	// Resolve fetches a key outside any request context.
	Resolve(key string) (*core.Detector, error)
}

// TrainFunc builds a candidate detector from fresh cases, returning its
// cross-validation accuracy (0 when not measured).
type TrainFunc func(seed uint64) (*core.Detector, float64, error)

// JudgeFunc breaks a shadow disagreement when the request carried a
// replayable workload: it re-runs the kernels under the
// instrumentation-based tool and reports the ground-truth false-sharing
// verdict.
type JudgeFunc func(kernels []machine.Kernel) (fs bool, err error)

// Config configures a Manager.
type Config struct {
	// Spec is the loop shape (zero value: DefaultSpec).
	Spec Spec
	// Name is the logical detector the loop manages (default
	// "default").
	Name string
	// Registry is required: where candidates register and pointers
	// flip.
	Registry Registry
	// Counters, when non-nil, receives the lifecycle metrics.
	Counters stream.CounterSink
	// HistoryDir, when non-empty, persists the run ledger there.
	HistoryDir string
	// HistoryLimit bounds retained runs (default 64).
	HistoryLimit int
	// Train overrides the retrainer (default: quick exps.Lab pipeline
	// with 10-fold cross-validation for the accuracy figure).
	Train TrainFunc
	// Judge overrides the disagreement tiebreaker (default:
	// shadow.Run on the paper-default machine). Nil after defaulting
	// disables judging; disagreements then simply count against the
	// candidate.
	Judge JudgeFunc
	// Seed is the base retrain seed; run N trains with a seed derived
	// from it (default 1).
	Seed uint64
	// Parallelism caps the default trainer's case simulations.
	Parallelism int
	// Now overrides the clock (tests).
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change
	// synchronously (tests and logging).
	OnTransition func(Transition)
}

// Manager runs the loop for one logical detector. Safe for concurrent
// use; Mirror is designed for the request hot path (one atomic load
// when the loop is idle).
type Manager struct {
	cfg Config

	// armed is 1 while Mirror has work to do (state Shadowing or
	// Promoting): the hot-path gate, read before any lock.
	armed atomic.Int32
	// sampled counts Mirror calls for the 1-in-Every sampling.
	sampled atomic.Uint64

	mu    sync.Mutex
	state State
	// Drift bookkeeping.
	evidence    []time.Time // evidence timestamps within Spec.Window
	episodeOpen bool        // a drift alarm has no matching clear yet
	clears      int         // consecutive clears toward hysteresis
	// The versions in play.
	authKey   string         // current authoritative registry key
	candidate *core.Detector // shadowed candidate (Shadowing)
	candKey   string
	prevDet   *core.Detector // retained previous (Promoting probation)
	score     shadowScore    // per-phase comparison tallies
	run       *Run           // open ledger entry, nil when idle
	ledger    *ledger
	recent    []Transition // bounded transition ring for Status
	lastErr   string
	closed    bool
	wg        sync.WaitGroup // outstanding retrain goroutines
}

// Status is the loop's externally visible state (the /v1/lifecycle
// body's status half).
type Status struct {
	Name        string       `json:"name"`
	State       State        `json:"state"`
	Spec        Spec         `json:"spec"`
	ActiveKey   string       `json:"active_key,omitempty"`
	PreviousKey string       `json:"previous_key,omitempty"`
	Version     int          `json:"version,omitempty"`
	Evidence    int          `json:"evidence"`
	Runs        int          `json:"runs"`
	Run         *Run         `json:"run,omitempty"`
	Transitions []Transition `json:"transitions,omitempty"`
	LastError   string       `json:"last_error,omitempty"`
}

// New builds a Manager. The registry must already hold the incumbent
// under the managed name's active pointer (the serving layer registers
// its default detector and points the name at it before starting the
// loop).
func New(cfg Config) (*Manager, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("lifecycle: nil registry")
	}
	if (cfg.Spec == Spec{}) {
		cfg.Spec = DefaultSpec()
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "default"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.HistoryLimit == 0 {
		cfg.HistoryLimit = 64
	}
	if cfg.Train == nil {
		par := cfg.Parallelism
		cfg.Train = func(seed uint64) (*core.Detector, float64, error) {
			lab := &exps.Lab{Quick: true, Seed: seed, Parallelism: par}
			det, err := lab.Detector()
			if err != nil {
				return nil, 0, err
			}
			acc := 0.0
			if data, derr := lab.TrainingData(); derr == nil {
				if conf, cerr := ml.CrossValidate(ml.NewC45(ml.DefaultC45()), data, 10, seed); cerr == nil {
					acc = conf.Accuracy()
				}
			}
			return det, acc, nil
		}
	}
	if cfg.Judge == nil {
		cfg.Judge = func(kernels []machine.Kernel) (bool, error) {
			rep, err := shadow.Run(machine.Config{}, kernels)
			if err != nil {
				return false, err
			}
			return rep.Detected, nil
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Manager{
		cfg:    cfg,
		state:  StateStable,
		ledger: loadLedger(cfg.HistoryDir, cfg.HistoryLimit),
	}
	if key, _, _, ok := cfg.Registry.Active(cfg.Name); ok {
		m.authKey = key
	}
	return m, nil
}

// Name returns the managed logical detector name.
func (m *Manager) Name() string { return m.cfg.Name }

// Spec returns the loop shape.
func (m *Manager) Spec() Spec { return m.cfg.Spec }

// State returns the current state.
func (m *Manager) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Close stops the loop: the open run (if any) is finalized as
// "interrupted" and outstanding retrains are waited out (their results
// are discarded). Mirror and ObserveStream become no-ops.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.armed.Store(0)
	if m.run != nil {
		m.finishRunLocked("interrupted")
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// count bumps a lifecycle counter when a sink is attached.
func (m *Manager) count(name string, delta uint64) {
	if m.cfg.Counters != nil && delta > 0 {
		m.cfg.Counters.Add(name, delta)
	}
}

// transitionLocked moves the state machine, recording everywhere a
// transition must be visible: the counter, the open run's log, the
// recent ring, and the OnTransition hook. Callers hold m.mu.
func (m *Manager) transitionLocked(to State, reason string) {
	if m.state == to {
		return
	}
	tr := Transition{From: m.state, To: to, At: m.cfg.Now(), Reason: reason}
	m.state = to
	if to == StateShadowing || to == StatePromoting {
		m.armed.Store(1)
	} else {
		m.armed.Store(0)
	}
	m.count(MetricTransition, 1)
	if m.run != nil {
		m.run.Transitions = append(m.run.Transitions, tr)
	}
	m.recent = append(m.recent, tr)
	if len(m.recent) > 64 {
		m.recent = m.recent[len(m.recent)-64:]
	}
	if m.cfg.OnTransition != nil {
		m.cfg.OnTransition(tr)
	}
}

// ---------------------------------------------------------------------------
// Drift side: ObserveStream feeds the debouncer

// ObserveStream is the stream-layer hook: attach it as (or call it
// from) a monitor's OnEvent. Drift alarms open an episode and count
// evidence; classified windows inside an open episode count more
// evidence (so one sustained excursion accumulates); paired clears run
// the hysteresis back to stable.
func (m *Manager) ObserveStream(ev stream.Event) {
	switch ev.Kind {
	case stream.KindDrift, stream.KindWindow, stream.KindDriftClear:
	default:
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	now := m.cfg.Now()
	switch ev.Kind {
	case stream.KindDrift:
		m.episodeOpen = true
		m.clears = 0
		m.addEvidenceLocked(now)
		if m.state == StateStable || m.state == StateRolledBack {
			m.transitionLocked(StateDrifting, fmt.Sprintf("drift alarm at window %d", eventWindow(ev)))
		}
	case stream.KindWindow:
		if !m.episodeOpen {
			return
		}
		m.addEvidenceLocked(now)
	case stream.KindDriftClear:
		m.episodeOpen = false
		m.clears++
		if m.clears >= m.cfg.Spec.Clear && (m.state == StateDrifting || m.state == StateRolledBack) {
			m.evidence = nil
			m.transitionLocked(StateStable, fmt.Sprintf("%d consecutive drift clears", m.clears))
			m.clears = 0
		}
		return
	}
	m.maybeActLocked(now)
}

// addEvidenceLocked appends one evidence timestamp and prunes the
// sliding window.
func (m *Manager) addEvidenceLocked(now time.Time) {
	m.evidence = append(m.evidence, now)
	cut := now.Add(-m.cfg.Spec.Window)
	i := 0
	for i < len(m.evidence) && m.evidence[i].Before(cut) {
		i++
	}
	m.evidence = m.evidence[i:]
}

// maybeActLocked fires the evidence-gated actions: the retrain debounce
// while drifting, the drift-re-alarm rollback while on probation.
func (m *Manager) maybeActLocked(now time.Time) {
	if len(m.evidence) < m.cfg.Spec.Alarms {
		return
	}
	switch m.state {
	case StateDrifting:
		m.startRetrainLocked(now)
	case StatePromoting:
		m.rollbackLocked("drift re-alarm during probation")
	}
}

// eventWindow extracts the window index of a stream event for reasons
// strings.
func eventWindow(ev stream.Event) int {
	switch {
	case ev.Drift != nil:
		return ev.Drift.Window
	case ev.DriftClear != nil:
		return ev.DriftClear.Window
	case ev.Window != nil:
		return ev.Window.Index
	}
	return -1
}

// ---------------------------------------------------------------------------
// Retraining

// startRetrainLocked opens a run and spawns the trainer.
func (m *Manager) startRetrainLocked(now time.Time) {
	seq := m.ledger.nextSeq()
	seed := xrand.DeriveSeed(m.cfg.Seed, uint64(seq))
	m.run = &Run{
		Seq:      seq,
		Name:     m.cfg.Name,
		Outcome:  "in-flight",
		Started:  now,
		Seed:     seed,
		Evidence: len(m.evidence),
	}
	m.evidence = nil
	m.transitionLocked(StateRetraining, fmt.Sprintf("drift evidence debounced (run %d)", seq))
	m.count(MetricRetrain, 1)
	m.wg.Add(1)
	go m.retrain(seq, seed)
}

// retrain trains the candidate off the request path and hands the
// result back to the state machine.
func (m *Manager) retrain(seq int, seed uint64) {
	defer m.wg.Done()
	det, acc, err := m.cfg.Train(seed)
	m.mu.Lock()
	defer m.mu.Unlock()
	// The run may have been finalized while training (Close).
	if m.closed || m.run == nil || m.run.Seq != seq || m.state != StateRetraining {
		return
	}
	if err != nil {
		m.count(MetricTrainError, 1)
		m.lastErr = err.Error()
		m.run.Error = err.Error()
		// Back to Drifting: fresh evidence re-fires the debounce.
		m.transitionLocked(StateDrifting, "training failed: "+err.Error())
		m.finishRunLocked("failed")
		return
	}
	key, _, rerr := m.cfg.Registry.Register(det)
	if rerr != nil {
		m.count(MetricTrainError, 1)
		m.lastErr = rerr.Error()
		m.run.Error = rerr.Error()
		m.transitionLocked(StateDrifting, "candidate registration failed: "+rerr.Error())
		m.finishRunLocked("failed")
		return
	}
	m.candidate = det
	m.candKey = key
	m.run.CandidateKey = key
	m.run.TrainAccuracy = acc
	m.shadowReset()
	m.transitionLocked(StateShadowing, fmt.Sprintf("candidate %s trained (cv accuracy %.2f)", key, acc))
}

// ---------------------------------------------------------------------------
// Shadow scoring: Mirror on the classify hot path

// shadowScore holds the per-phase comparison tallies. Guarded by m.mu.
type shadowScore struct {
	total, agree, disagree, wins int
	incConfSum, candConfSum      float64
	latencies                    []float64
}

func (m *Manager) shadowReset() {
	m.score = shadowScore{}
}

// Mirror runs the shadow comparison for one authoritative
// classification. authKey is the registry key that answered; class and
// confidence are the authoritative verdict; sample is the measured
// feature vector; kernels, when non-nil, is the replayable workload the
// judge can re-run on disagreement. Mirror never changes the
// authoritative verdict — it only scores.
func (m *Manager) Mirror(authKey, class string, confidence float64, sample pmu.Sample, kernels []machine.Kernel) {
	if m.armed.Load() == 0 {
		return
	}
	if every := uint64(m.cfg.Spec.Every); every > 1 && m.sampled.Add(1)%every != 0 {
		return
	}

	m.mu.Lock()
	if m.closed || (m.state != StateShadowing && m.state != StatePromoting) {
		m.mu.Unlock()
		return
	}
	// Only traffic answered by the version under management is
	// comparable; explicit requests for other detectors are skipped.
	if authKey != m.authoritativeKeyLocked() {
		m.mu.Unlock()
		return
	}
	state := m.state
	other := m.candidate
	if state == StatePromoting {
		other = m.prevDet
	}
	m.mu.Unlock()
	if other == nil {
		return
	}

	// Classify outside the lock: the comparison detector is immutable.
	t0 := time.Now()
	rr, err := other.ClassifyRobust(sample)
	lat := time.Since(t0).Seconds()
	if err != nil {
		// A sample the comparison model cannot read scores as a
		// disagreement it loses: a candidate that cannot classify live
		// traffic must not be promoted.
		rr.Class, rr.Confidence = "", 0
	}

	m.count(MetricShadowTotal, 1)
	agreed := rr.Class == class
	if !agreed {
		m.count(MetricShadowDisagree, 1)
	}

	// Judge the disagreement when ground truth is replayable. Only the
	// shadowing phase judges — probation is a regression watch, where
	// any disagreement with the version that just won its budget is
	// suspect.
	win := false
	if !agreed && state == StateShadowing && kernels != nil && m.cfg.Judge != nil {
		if fs, jerr := m.cfg.Judge(kernels); jerr == nil {
			win = (isFS(rr.Class) == fs) && (isFS(class) != fs)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.state != state {
		return // the phase ended while we were scoring
	}
	m.score.total++
	m.score.incConfSum += confidence
	m.score.candConfSum += rr.Confidence
	m.score.latencies = append(m.score.latencies, lat)
	if agreed {
		m.score.agree++
	} else {
		m.score.disagree++
		if win {
			m.score.wins++
		}
	}
	switch state {
	case StateShadowing:
		if m.run != nil {
			m.run.ShadowTotal = m.score.total
			m.run.ShadowAgree = m.score.agree
			m.run.ShadowDisagree = m.score.disagree
			m.run.CandidateWins = m.score.wins
		}
		if m.score.total >= m.cfg.Spec.Shadow {
			m.decideShadowLocked()
		}
	case StatePromoting:
		if m.run != nil {
			m.run.ProbationTotal = m.score.total
			m.run.ProbationDisagree = m.score.disagree
		}
		if float64(m.score.disagree) > m.cfg.Spec.Regress*float64(m.cfg.Spec.Probation) {
			m.rollbackLocked(fmt.Sprintf("probation disagreement %d/%d exceeded regress=%.2f budget",
				m.score.disagree, m.score.total, m.cfg.Spec.Regress))
		} else if m.score.total >= m.cfg.Spec.Probation {
			m.confirmLocked()
		}
	}
}

// isFS maps a detector class to the binary false-sharing verdict the
// instrumentation judge reports.
func isFS(class string) bool { return class == "bad-fs" }

// authoritativeKeyLocked is the registry key currently serving the
// managed name.
func (m *Manager) authoritativeKeyLocked() string {
	if key, _, _, ok := m.cfg.Registry.Active(m.cfg.Name); ok {
		return key
	}
	return m.authKey
}

// decideShadowLocked closes the shadow budget: promote or reject.
func (m *Manager) decideShadowLocked() {
	agreement := float64(m.score.agree+m.score.wins) / float64(m.score.total)
	meanInc := m.score.incConfSum / float64(m.score.total)
	meanCand := m.score.candConfSum / float64(m.score.total)
	if m.run != nil {
		m.run.Agreement = agreement
		m.run.MeanIncumbentConf = meanInc
		m.run.MeanCandidateConf = meanCand
		m.run.LatencyP50, m.run.LatencyP95, m.run.LatencyP99 = percentiles(m.score.latencies)
	}
	if agreement < m.cfg.Spec.Agree || meanCand-meanInc < m.cfg.Spec.Conf {
		m.count(MetricReject, 1)
		reason := fmt.Sprintf("shadow budget lost: agreement %.2f (want >= %.2f), confidence edge %.3f (want >= %.3f)",
			agreement, m.cfg.Spec.Agree, meanCand-meanInc, m.cfg.Spec.Conf)
		m.candidate, m.candKey = nil, ""
		m.transitionLocked(StateStable, reason)
		m.finishRunLocked("rejected")
		return
	}
	m.promoteLocked(agreement)
}

// promoteLocked flips the active pointer to the candidate and opens
// probation against the retained previous version.
func (m *Manager) promoteLocked(agreement float64) {
	prevKey, _, version, _ := m.cfg.Registry.Active(m.cfg.Name)
	if prevKey == "" {
		prevKey = m.authKey
	}
	newVersion := version + 1
	if err := m.cfg.Registry.SetActive(m.cfg.Name, m.candKey, prevKey, newVersion); err != nil {
		m.lastErr = err.Error()
		m.run.Error = err.Error()
		m.transitionLocked(StateStable, "pointer flip failed: "+err.Error())
		m.finishRunLocked("failed")
		return
	}
	m.count(MetricPromote, 1)
	prevDet, err := m.cfg.Registry.Resolve(prevKey)
	if err != nil {
		// Probation needs the previous version to compare against; if
		// it cannot be resolved the promotion stands unwatched.
		prevDet = nil
	}
	m.prevDet = prevDet
	m.authKey = m.candKey
	if m.run != nil {
		m.run.PreviousKey = prevKey
		m.run.Version = newVersion
	}
	m.shadowReset()
	m.transitionLocked(StatePromoting, fmt.Sprintf("candidate won shadow budget (agreement %.2f); now v%d, probation open", agreement, newVersion))
	if m.prevDet == nil {
		m.confirmLocked()
	}
}

// confirmLocked ends probation successfully.
func (m *Manager) confirmLocked() {
	m.candidate, m.candKey, m.prevDet = nil, "", nil
	m.transitionLocked(StateStable, "probation passed; promotion confirmed")
	m.finishRunLocked("promoted")
}

// rollbackLocked restores the retained previous version. Callers hold
// m.mu; the registry flip is atomic under the registry's own lock, so
// in-flight requests see either the old or the new pointer, never a
// mix.
func (m *Manager) rollbackLocked(reason string) {
	key, prev, version, ok := m.cfg.Registry.Active(m.cfg.Name)
	if !ok || prev == "" {
		// Nothing to roll back to; record the failure and hold.
		m.lastErr = "rollback wanted but no previous version retained"
		m.transitionLocked(StateStable, reason+" (rollback impossible: no previous version)")
		m.finishRunLocked("failed")
		return
	}
	if err := m.cfg.Registry.SetActive(m.cfg.Name, prev, key, version+1); err != nil {
		m.lastErr = err.Error()
		m.transitionLocked(StateStable, "rollback flip failed: "+err.Error())
		m.finishRunLocked("failed")
		return
	}
	m.count(MetricRollback, 1)
	m.authKey = prev
	m.candidate, m.candKey, m.prevDet = nil, "", nil
	if m.run != nil {
		m.run.Version = version + 1
	}
	m.evidence = nil
	m.transitionLocked(StateRolledBack, reason)
	m.finishRunLocked("rolled-back")
}

// finishRunLocked stamps and persists the open run.
func (m *Manager) finishRunLocked(outcome string) {
	if m.run == nil {
		return
	}
	m.run.Outcome = outcome
	m.run.Finished = m.cfg.Now()
	if m.run.ShadowTotal > 0 && m.run.Agreement == 0 {
		m.run.Agreement = float64(m.run.ShadowAgree+m.run.CandidateWins) / float64(m.run.ShadowTotal)
	}
	if len(m.score.latencies) > 0 && m.run.LatencyP50 == 0 {
		m.run.LatencyP50, m.run.LatencyP95, m.run.LatencyP99 = percentiles(m.score.latencies)
	}
	m.ledger.append(m.run)
	m.run = nil
	m.shadowReset()
}

// percentiles returns the p50/p95/p99 of a latency sample.
func percentiles(lat []float64) (p50, p95, p99 float64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.95), at(0.99)
}

// ---------------------------------------------------------------------------
// Introspection

// Status snapshots the loop.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Name:      m.cfg.Name,
		State:     m.state,
		Spec:      m.cfg.Spec,
		Evidence:  len(m.evidence),
		Runs:      len(m.ledger.runs),
		LastError: m.lastErr,
	}
	if key, prev, version, ok := m.cfg.Registry.Active(m.cfg.Name); ok {
		st.ActiveKey, st.PreviousKey, st.Version = key, prev, version
	}
	if m.run != nil {
		r := *m.run
		st.Run = &r
	}
	if n := len(m.recent); n > 0 {
		st.Transitions = append([]Transition(nil), m.recent[max(0, n-16):]...)
	}
	return st
}

// History returns up to limit most-recent completed runs, newest first
// (limit < 1 means all retained).
func (m *Manager) History(limit int) []Run {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ledger.history(limit)
}
