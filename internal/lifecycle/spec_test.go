package lifecycle

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseSpecDefaults(t *testing.T) {
	for _, in := range []string{"", "on", "  on  "} {
		got, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if got != DefaultSpec() {
			t.Errorf("ParseSpec(%q) = %+v, want defaults", in, got)
		}
	}
}

func TestParseSpecFull(t *testing.T) {
	got, err := ParseSpec("alarms=5,window=90s,clear=3,every=8,shadow=128,agree=0.95,conf=-0.1,probation=32,regress=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Alarms: 5, Window: 90 * time.Second, Clear: 3, Every: 8,
		Shadow: 128, Agree: 0.95, Conf: -0.1, Probation: 32, Regress: 0.5}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestParseSpecPartialKeepsDefaults(t *testing.T) {
	got, err := ParseSpec("shadow=16")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultSpec()
	want.Shadow = 16
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in    string
		field string
	}{
		{"bogus=1", "bogus"},
		{"alarms=0", "alarms"},
		{"alarms=x", "alarms"},
		{"window=0s", "window"},
		{"window=nope", "window"},
		{"agree=1.5", "agree"},
		{"agree=-0.1", "agree"},
		{"conf=2", "conf"},
		{"regress=9", "regress"},
		{"shadow=", "shadow="},
		{"shadow=4,shadow=5", "shadow"},
		{"justakey", "justakey"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.in)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("ParseSpec(%q): err = %v, want *SpecError", c.in, err)
			continue
		}
		if se.Field != c.field {
			t.Errorf("ParseSpec(%q): field = %q, want %q", c.in, se.Field, c.field)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, spec := range []Spec{DefaultSpec(), {Alarms: 1, Window: time.Second, Clear: 1, Every: 7, Shadow: 3, Agree: 0.125, Conf: -0.25, Probation: 9, Regress: 1}} {
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", spec.String(), err)
		}
		if back != spec {
			t.Errorf("round trip %q = %+v, want %+v", spec.String(), back, spec)
		}
	}
}

// FuzzParseLifecycleSpec pins the parser's safety properties: it never
// panics, an accepted spec always validates, and its canonical String
// form re-parses to the identical spec.
func FuzzParseLifecycleSpec(f *testing.F) {
	f.Add("")
	f.Add("on")
	f.Add("alarms=3,window=2m,clear=2")
	f.Add("shadow=64,agree=0.9,conf=0,probation=64,regress=0.25")
	f.Add("every=1,window=1h30m")
	f.Add("alarms=-1")
	f.Add("agree=NaN")
	f.Add("window=1ns,window=1ns")
	f.Add(strings.Repeat("a=1,", 100))
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseSpec(%q): non-SpecError %v", in, err)
			}
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec %+v: %v", in, spec, verr)
		}
		back, rerr := ParseSpec(spec.String())
		if rerr != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", spec.String(), in, rerr)
		}
		if back != spec {
			t.Fatalf("round trip of %q: %+v != %+v", in, back, spec)
		}
	})
}
