package lifecycle

// Unit tests of the self-healing loop against a fake registry and
// hand-built detectors: the debounce, the shadow verdicts, the pointer
// flips, and the ledger. The end-to-end wiring through the HTTP server
// lives in the chaos test (chaos_test.go, external package).

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fsml/internal/core"
	"fsml/internal/dataset"
	"fsml/internal/machine"
	"fsml/internal/pmu"
	"fsml/internal/stream"
)

const (
	attrHITM = "SNOOP_RESPONSE.HITM"
	attrMiss = "L2_RQSTS.LD_MISS"
)

// tinyDetector builds the standard two-attribute detector (high HITM →
// bad-fs, high miss → bad-ma, low both → good).
func tinyDetector(t testing.TB) *core.Detector {
	t.Helper()
	return trainTiny(t, map[string]string{})
}

// contraryDetector relabels the good region as bad-fs, so it agrees
// with tinyDetector on the bad-fs and bad-ma families and disagrees on
// good traffic.
func contraryDetector(t testing.TB) *core.Detector {
	t.Helper()
	return trainTiny(t, map[string]string{"good": "bad-fs"})
}

func trainTiny(t testing.TB, relabel map[string]string) *core.Detector {
	t.Helper()
	d := dataset.New([]string{attrHITM, attrMiss})
	add := func(label string, hitm, miss float64) {
		if r, ok := relabel[label]; ok {
			label = r
		}
		if err := d.Add(dataset.Instance{Features: []float64{hitm, miss}, Label: label}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		f := float64(i) * 0.01
		add("bad-fs", 0.50+f, 0.05+f/2)
		add("bad-ma", 0.01+f/10, 0.60+f)
		add("good", 0.01+f/10, 0.02+f/10)
	}
	det, err := core.TrainDetector(d)
	if err != nil {
		t.Fatalf("training tiny detector: %v", err)
	}
	return det
}

// sampleFS and sampleGood are the two traffic families the tests mirror.
func sampleFS() pmu.Sample {
	return pmu.Sample{Names: []string{attrHITM, attrMiss}, Counts: []float64{0.60, 0.06}, Instructions: 1}
}

func sampleGood() pmu.Sample {
	return pmu.Sample{Names: []string{attrHITM, attrMiss}, Counts: []float64{0.01, 0.02}, Instructions: 1}
}

// fakeRegistry is an in-memory lifecycle.Registry.
type fakeRegistry struct {
	mu      sync.Mutex
	dets    map[string]*core.Detector
	active  map[string]ActivePointerLike
	setErrs int // >0: fail the next SetActive calls
}

type ActivePointerLike struct {
	Key, Previous string
	Version       int
}

func newFakeRegistry() *fakeRegistry {
	return &fakeRegistry{dets: map[string]*core.Detector{}, active: map[string]ActivePointerLike{}}
}

func (r *fakeRegistry) Register(det *core.Detector) (string, bool, error) {
	encoded, err := det.Encode()
	if err != nil {
		return "", false, err
	}
	key := fmt.Sprintf("sha256:%x", len(encoded)) // content-ish, distinct per model here
	r.mu.Lock()
	defer r.mu.Unlock()
	_, existed := r.dets[key]
	r.dets[key] = det
	return key, existed, nil
}

// put installs a detector under an explicit key (test setup).
func (r *fakeRegistry) put(key string, det *core.Detector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dets[key] = det
}

func (r *fakeRegistry) SetActive(name, key, previous string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.setErrs > 0 {
		r.setErrs--
		return fmt.Errorf("fake: SetActive failing")
	}
	r.active[name] = ActivePointerLike{Key: key, Previous: previous, Version: version}
	return nil
}

func (r *fakeRegistry) Active(name string) (string, string, int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.active[name]
	return p.Key, p.Previous, p.Version, ok
}

func (r *fakeRegistry) Resolve(key string) (*core.Detector, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	det, ok := r.dets[key]
	if !ok {
		return nil, fmt.Errorf("fake: unknown key %s", key)
	}
	return det, nil
}

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// drift / window / clear build synthetic stream events.
func drift(w int) stream.Event {
	return stream.Event{Kind: stream.KindDrift, Drift: &stream.DriftAlarm{Window: w}}
}

func window(w int) stream.Event {
	return stream.Event{Kind: stream.KindWindow, Window: &stream.WindowVerdict{Index: w, Class: "good"}}
}

func clear(w int) stream.Event {
	return stream.Event{Kind: stream.KindDriftClear, DriftClear: &stream.DriftCleared{Window: w}}
}

// testManager builds a manager around the fake registry with an
// incumbent installed and active, an instant trainer returning
// candidate, and a tight spec.
func testManager(t *testing.T, reg *fakeRegistry, candidate *core.Detector, spec Spec, opts ...func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Spec:     spec,
		Name:     "default",
		Registry: reg,
		Now:      newFakeClock().Now,
		Train: func(seed uint64) (*core.Detector, float64, error) {
			return candidate, 0.97, nil
		},
	}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// driveToShadowing feeds drift evidence until the retrain fires and
// waits for the (synchronous-trainer) retrain goroutine to finish.
func driveToShadowing(t *testing.T, m *Manager) {
	t.Helper()
	m.ObserveStream(drift(10))
	for w := 11; w < 20 && m.State() != StateShadowing; w++ {
		m.ObserveStream(window(w))
		if m.State() == StateRetraining {
			waitState(t, m, StateShadowing)
		}
	}
	if got := m.State(); got != StateShadowing {
		t.Fatalf("state = %s, want shadowing", got)
	}
}

func waitState(t *testing.T, m *Manager, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("state = %s, want %s (timeout)", m.State(), want)
}

// mirror shadows one sample through the manager as if the incumbent had
// answered it.
func mirror(m *Manager, reg *fakeRegistry, sample pmu.Sample) {
	key, _, _, _ := reg.Active("default")
	det, _ := reg.Resolve(key)
	rr, err := det.ClassifyRobust(sample)
	if err != nil {
		panic(err)
	}
	m.Mirror(key, rr.Class, rr.Confidence, sample, nil)
}

func tightSpec() Spec {
	return Spec{
		Alarms: 3, Window: time.Minute, Clear: 2, Every: 1,
		Shadow: 8, Agree: 0.9, Conf: -0.5, Probation: 8, Regress: 0.25,
	}
}

// TestDebounceSingleBlipDoesNotRetrain: one alarm followed by a clear
// never reaches Retraining.
func TestDebounceSingleBlipDoesNotRetrain(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	m := testManager(t, reg, tinyDetector(t), tightSpec())

	m.ObserveStream(drift(3))
	m.ObserveStream(clear(4))
	if got := m.State(); got != StateDrifting {
		t.Fatalf("after one blip: state = %s, want drifting (hysteresis not met)", got)
	}
	m.ObserveStream(drift(6))
	m.ObserveStream(clear(7))
	// Evidence: 2 alarms, below alarms=3 — and clears reached
	// hysteresis... but clears reset on each new alarm, so only after a
	// second consecutive clear does the state drop back.
	m.ObserveStream(clear(8))
	if got := m.State(); got != StateStable {
		t.Fatalf("after clears: state = %s, want stable", got)
	}
	if st := m.Status(); st.Runs != 0 {
		t.Fatalf("runs = %d, want 0 (no retrain from blips)", st.Runs)
	}
}

// TestDebounceSustainedDriftRetrainsOnce: a sustained episode fires
// exactly one retrain.
func TestDebounceSustainedDriftRetrainsOnce(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	var trains int
	cand := tinyDetector(t)
	m := testManager(t, reg, cand, tightSpec(), func(cfg *Config) {
		inner := cfg.Train
		cfg.Train = func(seed uint64) (*core.Detector, float64, error) {
			trains++
			return inner(seed)
		}
	})

	driveToShadowing(t, m)
	// More drift evidence while shadowing must not fire another train.
	for w := 20; w < 30; w++ {
		m.ObserveStream(window(w))
	}
	if trains != 1 {
		t.Fatalf("trains = %d, want exactly 1 (debounced)", trains)
	}
}

// TestShadowPromoteAndConfirm: an agreeing candidate wins the budget,
// the pointer flips, and a clean probation confirms it.
func TestShadowPromoteAndConfirm(t *testing.T) {
	reg := newFakeRegistry()
	inc := tinyDetector(t)
	reg.put("inc", inc)
	_ = reg.SetActive("default", "inc", "", 1)
	var transitions []Transition
	m := testManager(t, reg, tinyDetector(t), tightSpec(), func(cfg *Config) {
		cfg.OnTransition = func(tr Transition) { transitions = append(transitions, tr) }
	})
	driveToShadowing(t, m)

	for i := 0; i < tightSpec().Shadow; i++ {
		mirror(m, reg, sampleGood())
	}
	if got := m.State(); got != StatePromoting {
		t.Fatalf("after shadow budget: state = %s, want promoting", got)
	}
	key, prev, version, _ := reg.Active("default")
	if prev != "inc" || version != 2 || key == "inc" {
		t.Fatalf("pointer after flip = (%s, %s, %d), want (candidate, inc, 2)", key, prev, version)
	}
	for i := 0; i < tightSpec().Probation; i++ {
		mirror(m, reg, sampleGood())
	}
	if got := m.State(); got != StateStable {
		t.Fatalf("after probation: state = %s, want stable", got)
	}
	runs := m.History(0)
	if len(runs) != 1 || runs[0].Outcome != "promoted" {
		t.Fatalf("history = %+v, want one promoted run", runs)
	}
	if runs[0].ShadowTotal != tightSpec().Shadow || runs[0].Agreement != 1 {
		t.Errorf("run tallies = total %d agreement %.2f, want %d/1.00", runs[0].ShadowTotal, runs[0].Agreement, tightSpec().Shadow)
	}
	wantPath := []State{StateDrifting, StateRetraining, StateShadowing, StatePromoting, StateStable}
	if len(transitions) != len(wantPath) {
		t.Fatalf("transitions = %+v, want path %v", transitions, wantPath)
	}
	for i, tr := range transitions {
		if tr.To != wantPath[i] {
			t.Errorf("transition %d lands in %s, want %s", i, tr.To, wantPath[i])
		}
	}
}

// TestShadowRejectsDisagreeingCandidate: a candidate that contradicts
// the incumbent on live traffic loses the budget and is never promoted.
func TestShadowRejectsDisagreeingCandidate(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	m := testManager(t, reg, contraryDetector(t), tightSpec())
	driveToShadowing(t, m)

	for i := 0; i < tightSpec().Shadow; i++ {
		mirror(m, reg, sampleGood()) // incumbent: good; contrary candidate: bad-fs
	}
	if got := m.State(); got != StateStable {
		t.Fatalf("state = %s, want stable (rejected)", got)
	}
	if key, _, _, _ := reg.Active("default"); key != "inc" {
		t.Fatalf("active key = %s, want inc (no flip on rejection)", key)
	}
	runs := m.History(0)
	if len(runs) != 1 || runs[0].Outcome != "rejected" {
		t.Fatalf("history = %+v, want one rejected run", runs)
	}
}

// TestProbationRegressionRollsBack: the candidate agrees during
// shadowing (good traffic), wins, then the traffic shifts to the family
// it mislabels — probation disagreement crosses the regress budget and
// the previous version is restored automatically.
func TestProbationRegressionRollsBack(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	m := testManager(t, reg, contraryDetector(t), tightSpec())
	driveToShadowing(t, m)

	for i := 0; i < tightSpec().Shadow; i++ {
		mirror(m, reg, sampleFS()) // both say bad-fs: candidate wins the budget
	}
	if got := m.State(); got != StatePromoting {
		t.Fatalf("state = %s, want promoting", got)
	}
	// Now the traffic the contrary candidate mislabels arrives: the new
	// authoritative (candidate) says bad-fs, retained previous says
	// good — disagreements accumulate until rollback.
	for i := 0; i < tightSpec().Probation && m.State() == StatePromoting; i++ {
		mirror(m, reg, sampleGood())
	}
	if got := m.State(); got != StateRolledBack {
		t.Fatalf("state = %s, want rolled-back", got)
	}
	key, _, version, _ := reg.Active("default")
	if key != "inc" {
		t.Fatalf("active key after rollback = %s, want inc", key)
	}
	if version != 3 {
		t.Errorf("version after rollback = %d, want 3 (flip + rollback)", version)
	}
	runs := m.History(0)
	if len(runs) != 1 || runs[0].Outcome != "rolled-back" {
		t.Fatalf("history = %+v, want one rolled-back run", runs)
	}
	// Hysteresis returns the bruised state to stable.
	m.ObserveStream(clear(40))
	m.ObserveStream(clear(41))
	if got := m.State(); got != StateStable {
		t.Fatalf("after clears: state = %s, want stable", got)
	}
}

// TestDriftReAlarmDuringProbationRollsBack: fresh drift evidence during
// probation is itself a regression signal.
func TestDriftReAlarmDuringProbationRollsBack(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	m := testManager(t, reg, tinyDetector(t), tightSpec())
	driveToShadowing(t, m)
	for i := 0; i < tightSpec().Shadow; i++ {
		mirror(m, reg, sampleGood())
	}
	if got := m.State(); got != StatePromoting {
		t.Fatalf("state = %s, want promoting", got)
	}
	m.ObserveStream(drift(30))
	m.ObserveStream(window(31))
	m.ObserveStream(window(32))
	if got := m.State(); got != StateRolledBack {
		t.Fatalf("state after drift re-alarm = %s, want rolled-back", got)
	}
	if key, _, _, _ := reg.Active("default"); key != "inc" {
		t.Fatalf("active key = %s, want inc restored", key)
	}
}

// TestTrainFailureReturnsToDrifting: a failing trainer records the
// error and re-arms the debounce instead of wedging the loop.
func TestTrainFailureReturnsToDrifting(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	m := testManager(t, reg, nil, tightSpec(), func(cfg *Config) {
		cfg.Train = func(uint64) (*core.Detector, float64, error) {
			return nil, 0, fmt.Errorf("collection exploded")
		}
	})
	m.ObserveStream(drift(10))
	m.ObserveStream(window(11))
	m.ObserveStream(window(12))
	waitState(t, m, StateDrifting)
	runs := m.History(0)
	if len(runs) != 1 || runs[0].Outcome != "failed" || runs[0].Error == "" {
		t.Fatalf("history = %+v, want one failed run carrying the error", runs)
	}
	if st := m.Status(); st.LastError == "" {
		t.Error("Status.LastError empty after training failure")
	}
}

// TestMirrorSampling: every=4 mirrors a quarter of the traffic.
func TestMirrorSampling(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	spec := tightSpec()
	spec.Every = 4
	spec.Shadow = 4
	m := testManager(t, reg, tinyDetector(t), spec)
	driveToShadowing(t, m)
	for i := 0; i < 12; i++ {
		mirror(m, reg, sampleGood())
	}
	st := m.Status()
	if st.Run == nil || st.Run.ShadowTotal != 3 {
		t.Fatalf("shadow total = %+v, want 3 of 12 mirrored at every=4", st.Run)
	}
}

// TestMirrorIgnoresOtherDetectors: traffic answered by an explicitly
// requested different detector never scores the candidate.
func TestMirrorIgnoresOtherDetectors(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	m := testManager(t, reg, tinyDetector(t), tightSpec())
	driveToShadowing(t, m)
	for i := 0; i < 20; i++ {
		m.Mirror("train:quick=true,seed=9", "good", 1, sampleGood(), nil)
	}
	if st := m.Status(); st.Run.ShadowTotal != 0 {
		t.Fatalf("shadow total = %d, want 0 (other detector's traffic)", st.Run.ShadowTotal)
	}
}

// TestLedgerPersistsAcrossRestart: runs land on disk and a new manager
// continues the sequence.
func TestLedgerPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	m := testManager(t, reg, tinyDetector(t), tightSpec(), func(cfg *Config) {
		cfg.HistoryDir = dir
	})
	driveToShadowing(t, m)
	for i := 0; i < tightSpec().Shadow+tightSpec().Probation; i++ {
		mirror(m, reg, sampleGood())
	}
	waitState(t, m, StateStable)
	m.Close()

	if _, err := os.Stat(filepath.Join(dir, "run-000001.json")); err != nil {
		t.Fatalf("ledger file missing: %v", err)
	}
	m2 := testManager(t, reg, tinyDetector(t), tightSpec(), func(cfg *Config) {
		cfg.HistoryDir = dir
	})
	runs := m2.History(0)
	if len(runs) != 1 || runs[0].Seq != 1 || runs[0].Outcome != "promoted" {
		t.Fatalf("reloaded history = %+v, want the promoted run 1", runs)
	}
	driveToShadowing(t, m2)
	if st := m2.Status(); st.Run == nil || st.Run.Seq != 2 {
		t.Fatalf("next run seq = %+v, want 2 (sequence continues)", st.Run)
	}
}

// TestJudgeVindicatesCandidate: a disagreement where the
// instrumentation judge sides with the candidate counts toward the
// agreement budget.
func TestJudgeVindicatesCandidate(t *testing.T) {
	reg := newFakeRegistry()
	reg.put("inc", tinyDetector(t))
	_ = reg.SetActive("default", "inc", "", 1)
	spec := tightSpec()
	spec.Shadow = 4
	spec.Agree = 1.0 // every comparison must be won
	judged := 0
	m := testManager(t, reg, contraryDetector(t), spec, func(cfg *Config) {
		cfg.Judge = func(_ []machine.Kernel) (bool, error) {
			judged++
			return true, nil // ground truth: false sharing is real
		}
	})
	driveToShadowing(t, m)
	// Incumbent says good, contrary candidate says bad-fs, judge says
	// the false sharing is real: candidate wins every disagreement.
	kernels := []machine.Kernel{}
	for i := 0; i < spec.Shadow; i++ {
		key, _, _, _ := reg.Active("default")
		m.Mirror(key, "good", 1, sampleGood(), kernels)
	}
	if judged != spec.Shadow {
		t.Fatalf("judge ran %d times, want %d", judged, spec.Shadow)
	}
	if got := m.State(); got != StatePromoting {
		t.Fatalf("state = %s, want promoting (judge vindicated the candidate)", got)
	}
}
