package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal draws", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation.
	s := NewSplitMix64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f, 0xf88bb8a8724c81ec}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("splitmix64(seed 0) draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 9 {
		t.Errorf("zero-seeded generator looks degenerate: %d distinct in 10 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) % 50
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterClampsAtZero(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Jitter(1.0, 3.0); v < 0 {
			t.Fatalf("Jitter returned negative %v for non-negative base", v)
		}
	}
}

func TestJitterZeroSDIsIdentity(t *testing.T) {
	r := New(10)
	if v := r.Jitter(42, 0); v != 42 {
		t.Errorf("Jitter(42, 0) = %v, want 42", v)
	}
}

func TestUniformityRough(t *testing.T) {
	r := New(1234)
	buckets := make([]int, 10)
	n := 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for b, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d has %d draws, want ~%d", b, c, n/10)
		}
	}
}

func TestDeriveSeedMatchesSplitMixStream(t *testing.T) {
	// DeriveSeed(root, i) must equal the (i+1)-th splitmix64 output of the
	// stream started at root: the O(1) formula and the iterated generator
	// are the same function.
	sm := NewSplitMix64(77)
	for i := uint64(0); i < 100; i++ {
		want := sm.Next()
		if got := DeriveSeed(77, i); got != want {
			t.Fatalf("DeriveSeed(77, %d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	// Distinct (root, index) pairs must not collide in any small batch:
	// a collision would make two "independent" cases share a stream.
	seen := map[uint64][2]uint64{}
	for root := uint64(0); root < 8; root++ {
		for i := uint64(0); i < 2048; i++ {
			s := DeriveSeed(root, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: (root=%d, i=%d) and (root=%d, i=%d) both derive %#x",
					root, i, prev[0], prev[1], s)
			}
			seen[s] = [2]uint64{root, i}
		}
	}
}
