// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Everything in fsml must be reproducible from a seed: the machine model,
// the measurement-noise model, the workload input generators and the
// cross-validation shuffles all draw from generators in this package rather
// than from math/rand, so that a experiment rerun with the same seed
// produces bit-identical tables.
package xrand

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both directly and to seed Xoshiro256 states, mirroring the reference
// usage. The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives an independent stream seed from a
// root seed and a case index: it is the splitmix64 output at position
// index+1 of the stream started at root, computed in O(1). Batch engines
// (internal/sched callers) use it so that every case's randomness is a
// pure function of (rootSeed, caseIndex) — never of execution order —
// which is what makes parallel collection byte-identical to sequential.
func DeriveSeed(root, index uint64) uint64 {
	z := root + (index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. It is not safe for concurrent use; the
// simulator is single-goroutine by design, and each independent consumer
// (machine, workload, noise model) owns its own Rand.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded from seed via splitmix64, as recommended by the
// xoshiro authors. Any seed, including zero, yields a usable state.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// An all-zero state would be absorbing; splitmix cannot produce four
	// consecutive zeros, but guard anyway for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if
// n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) as a slice,
// via the Fisher-Yates shuffle.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Jitter returns base perturbed by a relative Gaussian factor:
// base * (1 + stddev*N(0,1)). It never returns a negative value for a
// non-negative base; results are clamped at zero.
func (r *Rand) Jitter(base, stddev float64) float64 {
	v := base * (1 + stddev*r.NormFloat64())
	if base >= 0 && v < 0 {
		return 0
	}
	return v
}
