module fsml

go 1.22
