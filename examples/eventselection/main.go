// Eventselection demonstrates step 2 of the methodology (§2.3): starting
// from the full candidate catalogue of performance events, run the
// mini-programs in good vs bad-fs and good vs bad-ma modes and keep the
// events whose counts differ by at least 2x for a majority of programs —
// regenerating the paper's Table 2 selection.
//
// Note the two published subtleties this reproduces: the uncore HITM
// event the authors expected to matter fails selection (it undercounts),
// while SNOOP_RESPONSE.HITM — the event whose threshold alone determines
// the bad-fs verdict in the final tree — is selected in phase 1.
//
//	go run ./examples/eventselection
package main

import (
	"fmt"
	"log"

	"fsml"
)

func main() {
	fmt.Println("running the §2.3 event-selection procedure (quick probe grid)...")
	out, err := fsml.Reproduce("table2", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	fmt.Println("\nthe 15 features a detector actually trains on:")
	for i, name := range fsml.FeatureNames() {
		fmt.Printf("  %2d. %s\n", i+1, name)
	}
	fmt.Println("  16. INST_RETIRED.ANY (the normalizer)")
}
