// Benchsuite reproduces the paper's headline evaluation in miniature:
// train a detector, sweep a selection of Phoenix and PARSEC programs, and
// cross-check every positive against the shadow-memory verification tool
// — the Table 5 + Table 10 workflow.
//
//	go run ./examples/benchsuite
package main

import (
	"fmt"
	"log"

	"fsml"
)

func main() {
	det, rep, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector trained: %d instances, CV %.1f%%, tree %d leaves\n\n",
		rep.Data.Len(), 100*rep.CVAccuracy, rep.Tree.Leaves())

	programs := []string{
		"histogram", "linear_regression", "word_count", "matrix_multiply",
		"streamcluster", "canneal", "blackscholes",
	}
	fmt.Printf("%-18s %-8s %-8s %s\n", "program", "ours", "paper", "shadow-tool check (T=4, default flags)")
	for _, name := range programs {
		w, ok := fsml.LookupWorkload(name)
		if !ok {
			log.Fatalf("unknown workload %s", name)
		}
		v, err := fsml.ClassifyProgram(det, name, fsml.SweepOptions{Quick: true})
		if err != nil {
			log.Fatal(err)
		}
		// Verify with the instrumentation baseline at its worst-case
		// flag for this program (-O0 exposes compiler-removable false
		// sharing; streamcluster's survives any flag).
		opt := fsml.O0
		if w.Suite == "parsec" {
			opt = fsml.O2
		}
		cs := fsml.Case{Input: w.Inputs[0].Name, Threads: 4, Opt: opt, Seed: 11}
		shRep, err := fsml.ShadowVerify(fsml.DefaultMachine(), w.Build(cs))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "no FS"
		if shRep.Detected {
			verdict = "FS"
		}
		fmt.Printf("%-18s %-8s %-8s rate=%.6f -> %s\n", name, v.Class, w.PaperClass, shRep.FSRate, verdict)
	}

	fmt.Println("\nexpected shape: linear_regression and streamcluster flagged bad-fs")
	fmt.Println("(and confirmed by the tool), matrix_multiply bad-ma, the rest good.")
}
