// Mapreduce runs a word-count-style job on the bundled Phoenix-style
// MapReduce runtime and shows the framework-level false sharing the
// paper found in Phoenix: the per-worker bookkeeping structs are packed
// onto shared cache lines. The same job with padded bookkeeping is
// classified clean.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"

	"fsml"
)

func main() {
	det, _, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}

	job := fsml.MapReduceJob{
		Records: 120000, MapCost: 3, EmitEvery: 4, Keys: 128, ReduceCost: 2,
	}
	for _, packed := range []bool{true, false} {
		cfg := fsml.MapReduceConfig{
			Workers: 8, PackedCounters: packed, CounterEvery: 2, Seed: 5,
		}
		kernels, err := fsml.BuildMapReduce(job, cfg)
		if err != nil {
			log.Fatal(err)
		}
		class, obs, err := fsml.Detect(det, kernels)
		if err != nil {
			log.Fatal(err)
		}
		layout := "packed"
		if !packed {
			layout = "padded"
		}
		fmt.Printf("%s bookkeeping: classified %-7s (%.4f simulated s)\n", layout, class, obs.Seconds)
	}
	fmt.Println("\nthe framework's own counters — not the user's map/reduce code —")
	fmt.Println("are the false-sharing site, exactly as in Phoenix linear_regression.")
}
