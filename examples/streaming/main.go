// Streaming watches a program live instead of judging it after the
// fact: a quick-trained detector monitors the built-in phased demo
// workload (good -> bad-fs -> good) through the online engine, printing
// window verdicts as they classify, the phase-change events that catch
// the workload entering and leaving its false-sharing phase, and the
// drift alarm raised when the feature distribution leaves the training
// envelope. A lossy subscription rides along to show the backpressure
// contract: a slow consumer loses events — counted — but never stalls
// the session.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"fsml"
)

func main() {
	det, rep, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector trained: %d instances, CV %.1f%%\n\n", rep.Data.Len(), 100*rep.CVAccuracy)

	// Overlapping windows (stride < size) react faster than the batch
	// slicer; hysteresis 3 keeps single-window blips from flapping the
	// reported phase.
	spec := fsml.WindowSpec{Size: 4, Stride: 2, Hysteresis: 3}
	mon, err := fsml.NewStreamMonitor(nil, det, fsml.StreamMonitorConfig{
		Spec:     spec,
		Seed:     7,
		Envelope: fsml.StreamEnvelopeFromTree(det.Tree, 0),
		OnEvent: func(ev fsml.StreamEvent) {
			switch ev.Kind {
			case fsml.StreamKindWindow:
				v := ev.Window
				fmt.Printf("  window %2d [%2d,%2d)  raw %-8s smoothed %s\n",
					v.Index, v.Start, v.End, v.Class, v.Smoothed)
			case fsml.StreamKindPhase:
				p := ev.Phase
				fmt.Printf("  >>> phase %s -> %s (begins at window %d)\n", p.From, p.To, p.Start)
			case fsml.StreamKindDrift:
				fmt.Printf("  !!! drift at window %d: %v\n", ev.Drift.Window, ev.Drift.Features)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A deliberately tiny subscription: it only holds one event, so it
	// keeps just the freshest state — everything older is dropped.
	sub, err := mon.Subscribe(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %s (windows %s, seed 7):\n", fsml.StreamDemoProgram, spec)
	summary, err := mon.Run(context.Background(), fsml.PhasedKernels(4, 8000))
	if err != nil {
		log.Fatal(err)
	}

	last := 0
	for ev := range sub.Events() {
		last = ev.Seq
	}
	fmt.Printf("\nlossy subscriber: saw up to seq %d, dropped %d events\n", last, sub.Dropped())

	fmt.Printf("\nsummary: %d windows (%d classified), %d phase changes, %d drift alarms\n",
		summary.Windows, summary.Classified, summary.Phases, summary.DriftAlarms)
	fmt.Print("timeline:")
	for _, r := range summary.PhaseRuns {
		fmt.Printf(" %s[%d-%d]", r.Class, r.Start, r.End)
	}
	fmt.Println()
}
