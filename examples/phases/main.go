// Phases demonstrates time-sliced detection — the finer-granularity
// extension the paper lists as future work (§6), implemented here.
//
// The workload has three phases per thread: a clean streaming scan, a
// middle phase where all threads hammer one packed counter line (false
// sharing), and another clean scan. Whole-program counts would dilute
// the middle phase; slicing pinpoints it.
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"

	"fsml"
)

func buildPhased(threads, perPhase int) []fsml.Kernel {
	sp := fsml.NewSpace(1 << 24)
	input := fsml.NewPackedArray(sp, perPhase*threads)
	packed := fsml.NewPackedArray(sp, threads)
	padded := fsml.NewPaddedArray(sp, threads)
	kernels := make([]fsml.Kernel, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		start := tid * perPhase
		scan := func() fsml.Kernel {
			return &fsml.IterKernel{I: start, End: start + perPhase,
				Body: func(ctx *fsml.Ctx, i int) {
					ctx.Load(input.Addr(i))
					ctx.Exec(2)
					ctx.Store(padded.Addr(tid))
				}}
		}
		hammer := &fsml.IterKernel{I: start, End: start + perPhase,
			Body: func(ctx *fsml.Ctx, i int) {
				ctx.Load(packed.Addr(tid))
				ctx.Exec(1)
				ctx.Store(packed.Addr(tid))
			}}
		kernels[tid] = &fsml.SeqKernel{Stages: []fsml.Kernel{scan(), hammer, scan()}}
	}
	return kernels
}

func main() {
	det, _, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}

	kernels := buildPhased(6, 30000)
	whole, _, err := fsml.Detect(det, buildPhased(6, 30000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole-program classification: %s\n\n", whole)

	profile, err := fsml.DetectSliced(det, kernels, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(profile)
	fmt.Println("\nthe bad-fs run in the middle is the contended phase —")
	fmt.Println("whole-duration counts alone could not have located it.")
}
