// Quickstart: train a detector, then use it on your own workload.
//
// The workload here is the textbook mistake: worker threads keep their
// running totals in one packed array, so all of them write the same cache
// line. We detect it, apply the classic padding fix, and show the
// detector (and the runtime) agreeing that it is gone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fsml"
)

// buildWorkers returns one kernel per worker thread. Each worker scans
// its share of the input and accumulates into totals[tid] — packed or
// padded depending on the flag.
func buildWorkers(padded bool, workers, items int) ([]fsml.Kernel, *fsml.Machine) {
	sp := fsml.NewSpace(uint64(items)*8 + (1 << 20))
	input := fsml.NewPackedArray(sp, items) // shared read-only input
	var totals fsml.Array
	if padded {
		totals = fsml.NewPaddedArray(sp, workers)
	} else {
		totals = fsml.NewPackedArray(sp, workers)
	}
	kernels := make([]fsml.Kernel, workers)
	per := items / workers
	for tid := 0; tid < workers; tid++ {
		tid := tid
		start := tid * per
		kernels[tid] = &fsml.IterKernel{
			I: start, End: start + per,
			Body: func(ctx *fsml.Ctx, i int) {
				ctx.Load(input.Addr(i))     // read the item
				ctx.Exec(2)                 // process it
				ctx.Load(totals.Addr(tid))  // totals[tid] += ...
				ctx.Store(totals.Addr(tid)) // the contended write
			},
		}
	}
	return kernels, fsml.NewMachine(fsml.DefaultMachine())
}

func main() {
	fmt.Println("training the detector on the mini-programs (quick grids)...")
	det, rep, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d training instances, 10-fold CV accuracy %.1f%%\n\n",
		rep.Data.Len(), 100*rep.CVAccuracy)

	const workers, items = 8, 200000

	kernels, _ := buildWorkers(false, workers, items)
	class, obs, err := fsml.Detect(det, kernels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed totals:  classified %-7s (%.4f simulated seconds)\n", class, obs.Seconds)

	kernels, _ = buildWorkers(true, workers, items)
	classPadded, obsPadded, err := fsml.Detect(det, kernels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("padded totals:  classified %-7s (%.4f simulated seconds)\n", classPadded, obsPadded.Seconds)

	fmt.Printf("\npadding speedup: %.1fx\n", obs.Seconds/obsPadded.Seconds)
	if class == fsml.ClassBadFS && classPadded == fsml.ClassGood {
		fmt.Println("the detector caught the false sharing and confirmed the fix.")
	}
}
