// Report generates the full analysis document for one benchmark program:
// the detector's verdict over a case sweep, the event profile of the most
// incriminating case, the shadow-memory cross-check, and the contended
// cache lines a developer would pad — everything the paper's workflow
// produces, assembled into one Markdown report.
//
//	go run ./examples/report
package main

import (
	"fmt"
	"log"

	"fsml"
)

func main() {
	det, _, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fsml.BuildReport(det, "linear_regression", fsml.ReportOptions{
		Threads:   []int{6},
		MaxInputs: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Markdown())
}
