// Faultinjection demonstrates the hardened measurement pipeline: train a
// detector on honest counters, then classify a benchmark while the fault
// registry corrupts counter reads — saturation, wraparound, stuck-at-zero
// and multiplex starvation — at increasing rates. The sweep degrades
// gracefully (partial-subset predictions with recorded confidence, seeded
// retries, tolerated losses) instead of aborting, and the fault-matrix
// experiment renders accuracy versus fault rate over the labeled
// mini-program grid.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"fsml"
)

func main() {
	det, rep, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector trained: %d instances, CV %.1f%%\n\n", rep.Data.Len(), 100*rep.CVAccuracy)

	// Classify one known false-sharer under increasingly unreliable
	// counters. The spec format is the CLI's -faults flag.
	fmt.Println("linear_regression verdict vs counter-fault rate:")
	for _, spec := range []string{"off", "rate=0.1,seed=7", "rate=0.3,seed=7,kinds=stuck+starve"} {
		fcfg, err := fsml.ParseFaultSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		v, err := fsml.ClassifyProgram(det, "linear_regression", fsml.SweepOptions{Quick: true, Faults: fcfg})
		if err != nil {
			log.Fatal(err)
		}
		degraded, failed := 0, 0
		for _, c := range v.Cases {
			if c.Failed {
				failed++
			} else if c.Degraded {
				degraded++
			}
		}
		fmt.Printf("  %-36s %-8s %d cases, %d degraded, %d failed\n",
			fcfg, v.Class, len(v.Cases), degraded, failed)
	}

	// The full experiment: accuracy vs fault rate over the labeled
	// mini-program grid (also: `fsml repro fault-matrix`).
	out, err := fsml.Reproduce("fault-matrix", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", out)
	fmt.Println("\nexpected shape: accuracy stays high at low rates and decays")
	fmt.Println("gracefully — degraded and retried counts rise, the sweep never aborts.")
}
