// Dotproduct walks through the paper's motivating experiment (Figure 1 /
// Table 1): three implementations of a parallel dot product — a clean
// one, one with false sharing through a packed psum[] array, and one with
// pathological memory access — timed across thread counts on a 32-core
// machine, then classified by a trained detector.
//
//	go run ./examples/dotproduct
package main

import (
	"fmt"
	"log"

	"fsml"
)

const n = 200000

// buildPdot builds the three pdot variants of Figure 1. method: 1 = good
// (register accumulator), 2 = bad-fs (packed psum updated every
// iteration), 3 = bad-ma (strided element access).
func buildPdot(method, threads int) []fsml.Kernel {
	spec := fsml.MiniProgramSpec{Program: "pdot", Size: n, Threads: threads, Seed: 7}
	switch method {
	case 1:
		spec.Mode = fsml.Good
	case 2:
		spec.Mode = fsml.BadFS
	case 3:
		spec.Mode = fsml.BadMA
	}
	kernels, err := fsml.BuildMiniProgram(spec)
	if err != nil {
		log.Fatal(err)
	}
	return kernels
}

func main() {
	cfg := fsml.DefaultMachine()
	cfg.Cores = 32 // Table 1 uses a 32-core Xeon

	threadCounts := []int{1, 4, 8, 12, 16}
	labels := []string{"1: Good", "2: Bad, false sharing", "3: Bad, memory access"}

	fmt.Println("Table 1 analog: pdot execution time (simulated seconds)")
	fmt.Printf("%-24s", "Method / #Threads")
	for _, t := range threadCounts {
		fmt.Printf("%9d", t)
	}
	fmt.Println()
	for m := 1; m <= 3; m++ {
		fmt.Printf("%-24s", labels[m-1])
		for _, t := range threadCounts {
			mach := fsml.NewMachine(cfg)
			res := mach.Run(buildPdot(m, t))
			fmt.Printf("%9.4f", mach.Seconds(res))
		}
		fmt.Println()
	}

	fmt.Println("\ntraining a detector and classifying the three methods (T=8)...")
	det, _, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	for m := 1; m <= 3; m++ {
		class, _, err := fsml.DetectOn(det, cfg, buildPdot(m, 8))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s -> %s\n", labels[m-1], class)
	}
}
