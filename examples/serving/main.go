// Serving runs the detection server in-process and talks to it over
// HTTP the way an external client would: train a detector, upload it to
// the registry, classify a measured event vector with it, and scrape the
// server's metrics — the detection-as-a-service workflow.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"fsml"
)

func main() {
	// 1. A server on an ephemeral port. With no registry directory the
	// registry lives in memory; -registry-dir (or ServeConfig.RegistryDir)
	// would persist models across restarts.
	srv := fsml.NewServer(fsml.ServeConfig{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	client := fsml.NewServeClient("http://" + srv.Addr())
	ctx := context.Background()
	fmt.Printf("serving on http://%s\n", srv.Addr())

	// 2. Train a quick detector locally and upload it. The registry keys
	// it by content hash, so re-uploading the same model is a cache hit.
	det, _, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	model, err := det.Encode()
	if err != nil {
		log.Fatal(err)
	}
	reg, err := client.RegisterDetector(ctx, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered detector %s (cached=%t)\n", reg.Key, reg.Cached)

	// 3. Measure a known false-sharing workload locally and classify the
	// normalized vector over the wire.
	kernels, err := fsml.BuildMiniProgram(fsml.MiniProgramSpec{
		Program: "pdot", Size: 120000, Threads: 8, Mode: fsml.BadFS, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	obs := fsml.NewCollector().Measure("pdot/bad-fs", 42, kernels)
	resp, err := client.Classify(ctx, fsml.ClassifyRequest{
		Detector: reg.Key,
		Events:   obs.Sample.Names,
		Vector:   obs.Sample.Normalized(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %s (confidence %.2f, degraded=%t)\n", resp.Class, resp.Confidence, resp.Degraded)

	// 4. The metrics endpoint shows the request just served.
	metrics, err := client.MetricsText(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "fsml_requests_") || strings.HasPrefix(line, "fsml_registry_") {
			fmt.Println(line)
		}
	}

	// 5. Graceful shutdown drains any in-flight batches.
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}
