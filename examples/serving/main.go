// Serving runs the detection server in-process and talks to it over
// HTTP the way an external client would: train a detector, upload it to
// the registry, classify a measured event vector with it, and scrape the
// server's metrics — the detection-as-a-service workflow. It ends with
// an overload demo: a one-slot server sheds concurrent clients with 429
// and every client rides it out on seeded-backoff retries.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"fsml"
)

func main() {
	// 1. A server on an ephemeral port. With no registry directory the
	// registry lives in memory; -registry-dir (or ServeConfig.RegistryDir)
	// would persist models across restarts.
	srv := fsml.NewServer(fsml.ServeConfig{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	client := fsml.NewServeClient("http://" + srv.Addr())
	ctx := context.Background()
	fmt.Printf("serving on http://%s\n", srv.Addr())

	// 2. Train a quick detector locally and upload it. The registry keys
	// it by content hash, so re-uploading the same model is a cache hit.
	det, _, err := fsml.Train(fsml.TrainOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	model, err := det.Encode()
	if err != nil {
		log.Fatal(err)
	}
	reg, err := client.RegisterDetector(ctx, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered detector %s (cached=%t)\n", reg.Key, reg.Cached)

	// 3. Measure a known false-sharing workload locally and classify the
	// normalized vector over the wire.
	kernels, err := fsml.BuildMiniProgram(fsml.MiniProgramSpec{
		Program: "pdot", Size: 120000, Threads: 8, Mode: fsml.BadFS, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	obs := fsml.NewCollector().Measure("pdot/bad-fs", 42, kernels)
	resp, err := client.Classify(ctx, fsml.ClassifyRequest{
		Detector: reg.Key,
		Events:   obs.Sample.Names,
		Vector:   obs.Sample.Normalized(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %s (confidence %.2f, degraded=%t)\n", resp.Class, resp.Confidence, resp.Degraded)

	// 4. The metrics endpoint shows the request just served.
	metrics, err := client.MetricsText(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "fsml_requests_") || strings.HasPrefix(line, "fsml_registry_") {
			fmt.Println(line)
		}
	}

	// 5. Operating under load: a deliberately tiny server — one admission
	// slot, immediate shedding, a slow cold-start trainer — hit by eight
	// concurrent clients. Over-limit requests are shed with 429 +
	// Retry-After; each client's retry policy (capped exponential backoff
	// with seeded jitter) rides the sheds out, so every request still
	// succeeds and the shed counter shows the overload the server survived.
	tiny := fsml.NewServer(fsml.ServeConfig{
		Addr:        "127.0.0.1:0",
		MaxInflight: 1,
		ShedAfter:   -1, // no slot-wait window: demonstrate shedding
		Train: func(fsml.DetectorSpec) (*fsml.Detector, error) {
			time.Sleep(300 * time.Millisecond) // slow cold start holds the one slot
			return det, nil
		},
	})
	if err := tiny.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverload demo on http://%s (1 admission slot)\n", tiny.Addr())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := fsml.NewServeClient("http://" + tiny.Addr())
			c.Retry = fsml.ServeRetryPolicy{
				Max:     100,
				Backoff: fsml.RetryBackoff{Seed: uint64(i + 1)},
			}
			resp, err := c.Classify(ctx, fsml.ClassifyRequest{
				Events: obs.Sample.Names,
				Vector: obs.Sample.Normalized(),
			})
			if err != nil {
				log.Fatalf("client %d gave up: %v", i, err)
			}
			fmt.Printf("client %d: %s after backoff\n", i, resp.Class)
		}(i)
	}
	wg.Wait()
	tinyMetrics, err := fsml.NewServeClient("http://" + tiny.Addr()).MetricsText(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(tinyMetrics, "\n") {
		if strings.HasPrefix(line, "fsml_shed_classify_total") {
			fmt.Println(line)
		}
	}
	tctx, tcancel := context.WithTimeout(ctx, 10*time.Second)
	defer tcancel()
	if err := tiny.Shutdown(tctx); err != nil {
		log.Fatal(err)
	}

	// 6. Graceful shutdown drains any in-flight batches.
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}
