// Command fsml is the command-line front end of the false-sharing
// detector: train a model from the mini-programs, classify benchmark
// programs with it, inspect the learned tree, run the shadow-memory
// verification tool, and regenerate any of the paper's tables.
//
// Usage:
//
//	fsml train   [-quick] [-seed N] [-j N] [-ensemble [-ensemble-spec S]] [-o model.json]
//	fsml classify [-quick] [-model model.json] [-j N] [-faults SPEC] [-ensemble] <program>...
//	fsml classify -perf FILE [-model model.json] [-server URL [-retries N]] [-ensemble]
//	fsml tree    [-quick] [-model model.json] [-j N]
//	fsml events  [-quick] [-j N]
//	fsml shadow  [-threads N] [-input NAME] [-opt LEVEL] <program>
//	fsml repro   [-quick] [-j N] [-faults SPEC] <table1|...|fault-matrix|all>
//	fsml serve   [-addr A] [-j N] [-batch N] [-linger D] [-registry-dir DIR]
//	             [-max-inflight N] [-shed-after D] [-breaker-threshold N]
//	             [-breaker-cooldown D] [-faults SPEC]
//	fsml watch   [-window S[:T[:H]]] [-seed N] [-threads N] [-iters N]
//	             [-slice-rounds N] [-drift=0] [-json] [-server URL]
//	fsml list
//
// The -j flag caps concurrent case simulations (0 = all CPUs,
// 1 = sequential); results are bit-identical at every setting. The
// -faults flag injects deterministic counter faults (e.g.
// "rate=0.2,seed=7,kinds=saturate+stuck") and switches sweeps to
// tolerant, retrying mode.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fsml"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "tree":
		err = cmdTree(os.Args[2:])
	case "events":
		err = cmdEvents(os.Args[2:])
	case "shadow":
		err = cmdShadow(os.Args[2:])
	case "measure":
		err = cmdMeasure(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "record":
		err = cmdRecord(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "platform":
		err = cmdPlatform(os.Args[2:])
	case "repro":
		err = cmdRepro(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "lifecycle":
		err = cmdLifecycle(os.Args[2:])
	case "list":
		err = cmdList()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fsml: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsml:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  fsml train    [-quick] [-seed N] [-j N] [-o model.json]
                                                     collect + train a detector
  fsml train    -ensemble [-ensemble-spec S] [-quick] [-seed N] [-j N] [-o F]
                                                     train the multi-pathology
                                                     ensemble on the widened grids
  fsml classify [-quick] [-model F] [-j N] [-faults SPEC] <program>...
                                                     classify benchmark programs
  fsml classify -ensemble [-model F] [-quick] [-j N] <program>...
                                                     rank every pathology
  fsml classify -perf FILE [-model F] [-server URL [-retries N]] [-ensemble]
                                                     classify real perf output
                                                     (perf stat / c2c; "-" = stdin)
  fsml tree     [-quick] [-model F] [-j N]           print the decision tree
  fsml events   [-quick] [-j N]                      run the event-selection step
  fsml shadow   [-threads N] [-input NAME] [-opt N] <program>
                                                     run the verification tool
  fsml measure  [-threads N] [-input NAME] [-opt N] <program>
                                                     print the normalized event vector
  fsml trace    [-quick] [-model F] [-verify] [-server URL [-retries N] [-bin]] <file>...
                                                     classify access-trace files
                                                     (locally, or via a server)
  fsml record   [-threads N] [-input NAME] [-opt N] [-o FILE] <program>
                                                     record a program run as a trace
  fsml report   [-quick] [-model F] [-j N] [-json] [-o FILE] <program>
                                                     full analysis report (md or json)
  fsml platform [-quick] [-j N] <name>               retrain for a platform (steps 2-6)
  fsml repro    [-quick] [-j N] [-faults SPEC] <experiment|all>
                                                     regenerate a paper table
  fsml serve    [-addr A] [-j N] [-batch N] [-linger D] [-registry-dir DIR]
                [-max-inflight N] [-shed-after D] [-breaker-threshold N]
                [-breaker-cooldown D] [-faults SPEC] [-lifecycle SPEC]
                                                     run the detection server
                                                     (-lifecycle "on" or
                                                     "alarms=3,window=2m,..."
                                                     enables self-healing)
  fsml fleet    -peers URL,URL,... [-addr A] [-replicas N] [-vnodes N]
                [-probe-interval D] [-probe-timeout D] [-breaker-threshold N]
                [-breaker-cooldown D] [-quiet]        route a fleet of servers
  fsml watch    [-window S[:T[:H]]] [-seed N] [-threads N] [-iters N]
                [-slice-rounds N] [-drift=0] [-json] [-quick] [-model F] [-j N]
                [-server URL [-retries N] [-detector KEY]]
                                                     live-monitor the phased demo
                                                     (locally, or via a server)
  fsml lifecycle [-server URL] [-limit N] [-json] [status|history]
                                                     inspect a server's model
                                                     lifecycle (drift, shadow,
                                                     promote/rollback history)
  fsml list                                          list programs & experiments
`)
}

// jobsFlag registers the shared -j knob on a flag set.
func jobsFlag(fs *flag.FlagSet) *int {
	return fs.Int("j", 0, "max concurrent case simulations (0 = all CPUs, 1 = sequential)")
}

// faultsFlag registers the shared -faults knob on a flag set.
func faultsFlag(fs *flag.FlagSet) *string {
	return fs.String("faults", "off",
		`inject counter faults, e.g. "rate=0.2,seed=7,kinds=saturate+stuck" ("off" = honest counters)`)
}

// timeoutFlag registers the shared -timeout knob on a flag set.
func timeoutFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "abort the run after this long (0 = no deadline), e.g. 90s")
}

// timeoutContext turns a -timeout value into a context, mirroring the
// per-request deadline behavior of the serving handlers: zero means no
// deadline, anything else cancels the sweep mid-batch when it expires.
func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

// loadOrTrain returns a detector: from -model if given, else trained.
func loadOrTrain(path string, quick bool, jobs int) (*fsml.Detector, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return fsml.DecodeDetector(data)
	}
	fmt.Fprintln(os.Stderr, "fsml: no -model given; training one (use `fsml train -o model.json` to cache)")
	det, rep, err := fsml.Train(fsml.TrainOptions{Quick: quick, Parallelism: jobs})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "fsml: trained on %d instances, CV accuracy %.1f%%\n",
		rep.Data.Len(), 100*rep.CVAccuracy)
	return det, nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use reduced collection grids")
	seed := fs.Uint64("seed", 1, "training seed")
	jobs := jobsFlag(fs)
	ens := fs.Bool("ensemble", false, "train the multi-pathology ensemble (widened grids + bagged committees) instead of the 3-class detector")
	ensSpec := fs.String("ensemble-spec", "", `ensemble growth parameters, e.g. "members=5,sample=0.8,seed=42" (with -ensemble; "" = defaults)`)
	out := fs.String("o", "", "output model path (default model.json, or ensemble.json with -ensemble)")
	fs.Parse(args)
	if *ens {
		return trainEnsemble(*quick, *seed, *jobs, *ensSpec, *out)
	}
	if *ensSpec != "" {
		return fmt.Errorf("-ensemble-spec configures -ensemble training")
	}
	path := *out
	if path == "" {
		path = "model.json"
	}

	det, rep, err := fsml.Train(fsml.TrainOptions{Quick: *quick, Seed: *seed, Parallelism: *jobs})
	if err != nil {
		return err
	}
	fmt.Printf("training set: %d instances (Part A: %d, Part B: %d)\n",
		rep.Data.Len(), rep.PartA.Total(), rep.PartB.Total())
	fmt.Printf("10-fold CV accuracy: %.1f%%\n", 100*rep.CVAccuracy)
	fmt.Printf("tree: %d leaves, %d nodes\n", rep.Tree.Leaves(), rep.Tree.Size())
	blob, err := fsml.EncodeDetector(det)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", path)
	return nil
}

// trainEnsemble runs `fsml train -ensemble`: base detector, widened
// grids, bagged committees, one serialized fsml-ensemble-v1 file.
func trainEnsemble(quick bool, seed uint64, jobs int, specStr, out string) error {
	spec, err := fsml.ParseEnsembleSpec(specStr)
	if err != nil {
		return err
	}
	if out == "" {
		out = "ensemble.json"
	}
	det, err := fsml.TrainEnsemble(fsml.TrainOptions{Quick: quick, Seed: seed, Parallelism: jobs}, spec)
	if err != nil {
		return err
	}
	fmt.Printf("ensemble: %d classes (%s), %d committee members + base tree, %d attributes\n",
		len(det.Classes), strings.Join(det.Classes, ", "), len(det.Members), len(det.Attrs))
	if err := det.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("ensemble written to %s\n", out)
	return nil
}

// loadEnsemble returns an ensemble: from path if given, else trained.
func loadEnsemble(path string, quick bool, jobs int) (*fsml.EnsembleDetector, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return fsml.DecodeEnsemble(data)
	}
	fmt.Fprintln(os.Stderr, "fsml: no -model given; training an ensemble (use `fsml train -ensemble -o ensemble.json` to cache)")
	return fsml.TrainEnsemble(fsml.TrainOptions{Quick: quick, Parallelism: jobs}, fsml.DefaultEnsembleSpec())
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced sweep and training")
	model := fs.String("model", "", "trained model path (default: train now)")
	perf := fs.String("perf", "", "classify real `perf stat` / `perf c2c report` output from this file (\"-\" = stdin) instead of simulating programs")
	server := fs.String("server", "", "with -perf: classify via a running `fsml serve` at this URL instead of a local model")
	retries := fs.Int("retries", 4, "client retries when the server sheds or is briefly unavailable (with -server)")
	ens := fs.Bool("ensemble", false, "rank every pathology with the multi-label ensemble instead of the 3-class detector")
	jobs := jobsFlag(fs)
	faultSpec := faultsFlag(fs)
	timeout := timeoutFlag(fs)
	fs.Parse(args)
	if *perf != "" {
		if fs.NArg() > 0 {
			return fmt.Errorf("classify -perf takes no program names (the perf capture is the workload)")
		}
		return classifyPerf(*perf, *server, *retries, *model, *quick, *jobs, *ens)
	}
	if *server != "" {
		return fmt.Errorf("-server applies to -perf captures; program sweeps run locally")
	}
	names := fs.Args()
	if len(names) == 0 {
		return fmt.Errorf("classify needs at least one program name (see `fsml list`)")
	}
	if *ens {
		if *faultSpec != "off" {
			return fmt.Errorf("-faults applies to the 3-class sweep; the ensemble path measures honestly")
		}
		return classifyEnsemblePrograms(names, *model, *quick, *jobs)
	}
	fcfg, err := fsml.ParseFaultSpec(*faultSpec)
	if err != nil {
		return err
	}
	det, err := loadOrTrain(*model, *quick, *jobs)
	if err != nil {
		return err
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	for _, name := range names {
		v, err := fsml.ClassifyProgramContext(ctx, det, name, fsml.SweepOptions{Quick: *quick, Parallelism: *jobs, Faults: fcfg})
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-8s (", name, v.Class)
		first := true
		for _, m := range fsml.AllModes() {
			if n := v.Histogram[m.String()]; n > 0 {
				if !first {
					fmt.Print(", ")
				}
				fmt.Printf("%d/%d %s", n, len(v.Cases), m)
				first = false
			}
		}
		fmt.Println(")")
		if fcfg.Enabled() {
			degraded, failed := 0, 0
			for _, c := range v.Cases {
				if c.Failed {
					failed++
				} else if c.Degraded {
					degraded++
				}
			}
			fmt.Printf("  faults %s: %d/%d degraded, %d/%d failed\n",
				fcfg, degraded, len(v.Cases), failed, len(v.Cases))
		}
	}
	return nil
}

// classifyEnsemblePrograms runs `fsml classify -ensemble <program>...`:
// each program's default case is measured with the widened event set
// and ranked over the full pathology label space.
func classifyEnsemblePrograms(names []string, model string, quick bool, jobs int) error {
	det, err := loadEnsemble(model, quick, jobs)
	if err != nil {
		return err
	}
	for _, name := range names {
		w, ok := fsml.LookupWorkload(name)
		if !ok {
			return fmt.Errorf("unknown program %q (see `fsml list`)", name)
		}
		cs := fsml.Case{Input: w.Inputs[0].Name, Threads: 6, Opt: fsml.O2, Seed: 1}
		// NUMA-analog workloads only surface remote-DRAM traffic on
		// the two-socket machine; everything else runs the default.
		cfg := fsml.DefaultMachine()
		if w.PaperClass == "numa-remote" {
			cfg = fsml.NUMAMachine()
		}
		res, _, err := fsml.DetectPathologiesOn(det, cfg, w.Build(cs))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-18s %-12s (confidence %.3f)\n", name, res.Class, res.Confidence)
		for _, p := range res.Pathologies {
			fmt.Printf("  %-14s %.3f\n", p.Class, p.Score)
		}
		printPerfCaveats(res.Degraded, res.MissingEvents, nil)
	}
	return nil
}

// classifyPerf classifies a real perf capture: read it (file or
// stdin), then either upload it raw to a server or parse + map + rank
// it locally — with the 3-class detector, or over the full pathology
// label space when ens is set. Missing events degrade the verdict's
// confidence; the mapping summary says how much of the capture was
// actually used.
func classifyPerf(path, server string, retries int, model string, quick bool, jobs int, ens bool) error {
	label := path
	var data []byte
	var err error
	if path == "-" {
		label = "<stdin>"
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	if server != "" {
		c := fsml.NewServeClient(server)
		c.Retry = fsml.ServeRetryPolicy{Max: retries}
		var resp *fsml.ClassifyResponse
		if ens {
			resp, err = c.ClassifyPerfEnsemble(context.Background(), "", data)
		} else {
			resp, err = c.ClassifyPerf(context.Background(), "", data)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		fmt.Printf("%-24s %-8s (confidence %.3f, %s format, detector %s)\n",
			label, resp.Class, resp.Confidence, resp.PerfFormat, resp.Detector)
		for _, p := range resp.Pathologies {
			fmt.Printf("  %-14s %.3f\n", p.Class, p.Score)
		}
		printPerfCaveats(resp.Degraded, resp.Suspects, resp.UnmappedEvents)
		return nil
	}
	rep, err := fsml.ParsePerf(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	if ens {
		det, err := loadEnsemble(model, quick, jobs)
		if err != nil {
			return err
		}
		res, mapping, err := fsml.ClassifyPerfEnsemble(det, rep)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		fmt.Printf("%-24s %-12s (confidence %.3f, %s format, %d events)\n",
			label, res.Class, res.Confidence, rep.Format, len(rep.Events))
		for _, p := range res.Pathologies {
			fmt.Printf("  %-14s %.3f\n", p.Class, p.Score)
		}
		printPerfCaveats(res.Degraded, res.MissingEvents, mapping.Unmapped)
		return nil
	}
	det, err := loadOrTrain(model, quick, jobs)
	if err != nil {
		return err
	}
	rr, mapping, err := fsml.ClassifyPerf(det, rep)
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	fmt.Printf("%-24s %-8s (confidence %.3f, %s format, %d events)\n",
		label, rr.Class, rr.Confidence, rep.Format, len(rep.Events))
	printPerfCaveats(rr.Degraded, mapping.Missing, mapping.Unmapped)
	return nil
}

// printPerfCaveats renders the partial-coverage warnings of a perf
// verdict: features the capture did not measure (degrading the
// classification) and perf events no alias maps.
func printPerfCaveats(degraded bool, missing, unmapped []string) {
	if degraded {
		fmt.Printf("  degraded: missing events %s\n", strings.Join(missing, ", "))
	}
	if len(unmapped) > 0 {
		fmt.Printf("  unmapped perf events (ignored): %s\n", strings.Join(unmapped, ", "))
	}
}

func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced training")
	model := fs.String("model", "", "trained model path (default: train now)")
	jobs := jobsFlag(fs)
	fs.Parse(args)
	det, err := loadOrTrain(*model, *quick, *jobs)
	if err != nil {
		return err
	}
	fmt.Print(det.Tree.String())
	return nil
}

func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced probe grid")
	jobs := jobsFlag(fs)
	fs.Parse(args)
	out, err := fsml.ReproduceWith("table2", fsml.ExperimentOptions{Quick: *quick, Parallelism: *jobs})
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func cmdShadow(args []string) error {
	fs := flag.NewFlagSet("shadow", flag.ExitOnError)
	threads := fs.Int("threads", 4, "thread count (max 8: the tool's limit)")
	input := fs.String("input", "", "input set name (default: smallest)")
	opt := fs.Int("opt", 2, "optimization level 0-3")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("shadow needs exactly one program name")
	}
	w, ok := fsml.LookupWorkload(fs.Arg(0))
	if !ok {
		return fmt.Errorf("unknown program %q (see `fsml list`)", fs.Arg(0))
	}
	in := *input
	if in == "" {
		in = w.Inputs[0].Name
	}
	cs := fsml.Case{Input: in, Threads: *threads, Opt: fsml.OptLevel(*opt), Seed: 1}
	rep, err := fsml.ShadowVerify(fsml.DefaultMachine(), w.Build(cs))
	if err != nil {
		return err
	}
	fmt.Printf("%s %s: false-sharing rate %.9f (events: %d fs / %d ts over %d instructions)\n",
		w.Name, cs, rep.FSRate, rep.FalseSharing, rep.TrueSharing, rep.Instructions)
	if rep.Detected {
		fmt.Println("verdict: FALSE SHARING (rate > 1e-3)")
	} else {
		fmt.Println("verdict: no false sharing (rate <= 1e-3)")
	}
	return nil
}

func cmdMeasure(args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	threads := fs.Int("threads", 6, "thread count")
	input := fs.String("input", "", "input set name (default: smallest)")
	opt := fs.Int("opt", 2, "optimization level 0-3")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("measure needs exactly one program name")
	}
	w, ok := fsml.LookupWorkload(fs.Arg(0))
	if !ok {
		return fmt.Errorf("unknown program %q (see `fsml list`)", fs.Arg(0))
	}
	in := *input
	if in == "" {
		in = w.Inputs[0].Name
	}
	cs := fsml.Case{Input: in, Threads: *threads, Opt: fsml.OptLevel(*opt), Seed: 1}
	c := fsml.NewCollector()
	obs := c.Measure(w.Name, 1, w.Build(cs))
	fv, err := obs.Sample.FeatureVector()
	if err != nil {
		return err
	}
	fmt.Printf("%s %s: %d instructions, %.4f simulated s\n", w.Name, cs, obs.Result.Instructions, obs.Seconds)
	fmt.Printf("%-4s %-42s %s\n", "#", "event", "count/instruction")
	for i, name := range fsml.FeatureNames() {
		fmt.Printf("%-4d %-42s %.9f\n", i+1, name, fv[i])
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced training")
	model := fs.String("model", "", "trained model path (default: train now)")
	verify := fs.Bool("verify", false, "also run the shadow-memory verification tool")
	server := fs.String("server", "", "classify via a running `fsml serve` at this URL instead of a local model")
	retries := fs.Int("retries", 4, "client retries when the server sheds or is briefly unavailable (with -server)")
	bin := fs.Bool("bin", false, "use the binary classify protocol instead of JSON (with -server)")
	jobs := jobsFlag(fs)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("trace needs at least one trace file")
	}
	if *bin && *server == "" {
		return fmt.Errorf("-bin selects the server wire protocol; it needs -server")
	}
	if *server != "" {
		if *verify {
			return fmt.Errorf("-verify runs locally; drop it when classifying via -server")
		}
		// Remote path: upload each trace and let the retry policy ride
		// out sheds (429) and shutdown blips (503).
		c := fsml.NewServeClient(*server)
		c.Retry = fsml.ServeRetryPolicy{Max: *retries}
		for _, path := range fs.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if *bin {
				resp, err := c.ClassifyBinary(context.Background(), &fsml.BinClassifyRequest{Trace: data})
				if err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				v := resp.Verdicts[0]
				fmt.Printf("%-24s %-8s (detector %s, %.4f simulated s)\n", path, v.Class, resp.Detector, v.Seconds)
				continue
			}
			resp, err := c.Classify(context.Background(), fsml.ClassifyRequest{Trace: data})
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Printf("%-24s %-8s (detector %s, %.4f simulated s)\n", path, resp.Class, resp.Detector, resp.Seconds)
		}
		return nil
	}
	det, err := loadOrTrain(*model, *quick, *jobs)
	if err != nil {
		return err
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		tr, err := fsml.ParseTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		class, obs, err := fsml.DetectTrace(det, tr)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%-24s %-8s (%d threads, %d instructions, %.4f simulated s)\n",
			path, class, tr.NumThreads(), obs.Result.Instructions, obs.Seconds)
		if *verify {
			rep, err := fsml.ShadowVerify(fsml.DefaultMachine(), tr.Kernels())
			if err != nil {
				fmt.Printf("  shadow tool: %v\n", err)
				continue
			}
			fmt.Printf("  shadow tool: rate %.9f, detected=%v\n", rep.FSRate, rep.Detected)
		}
	}
	return nil
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	threads := fs.Int("threads", 4, "thread count")
	input := fs.String("input", "", "input set name (default: smallest)")
	opt := fs.Int("opt", 2, "optimization level 0-3")
	out := fs.String("o", "", "output trace path (default: <program>.trace)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("record needs exactly one program name")
	}
	w, ok := fsml.LookupWorkload(fs.Arg(0))
	if !ok {
		return fmt.Errorf("unknown program %q (see `fsml list`)", fs.Arg(0))
	}
	in := *input
	if in == "" {
		in = w.Inputs[0].Name
	}
	cs := fsml.Case{Input: in, Threads: *threads, Opt: fsml.OptLevel(*opt), Seed: 1}
	tr, res := fsml.RecordTrace(fsml.DefaultMachine(), w.Build(cs))
	path := *out
	if path == "" {
		path = w.Name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fsml.WriteTrace(f, tr); err != nil {
		return err
	}
	fmt.Printf("recorded %s %s: %d threads, %d trace records, %d instructions -> %s\n",
		w.Name, cs, tr.NumThreads(), tr.Ops(), res.Instructions, path)
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced training and sweep")
	model := fs.String("model", "", "trained model path (default: train now)")
	asJSON := fs.Bool("json", false, "emit JSON instead of Markdown")
	jobs := jobsFlag(fs)
	timeout := timeoutFlag(fs)
	out := fs.String("o", "", "output path (default: stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("report needs exactly one program name")
	}
	det, err := loadOrTrain(*model, *quick, *jobs)
	if err != nil {
		return err
	}
	opts := fsml.ReportOptions{Parallelism: *jobs}
	if *quick {
		opts.Threads = []int{6}
		opts.MaxInputs = 1
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	rep, err := fsml.BuildReportContext(ctx, det, fs.Arg(0), opts)
	if err != nil {
		return err
	}
	var blob []byte
	if *asJSON {
		blob, err = rep.JSON()
		if err != nil {
			return err
		}
	} else {
		blob = []byte(rep.Markdown())
	}
	if *out == "" {
		fmt.Print(string(blob))
		return nil
	}
	return os.WriteFile(*out, blob, 0o644)
}

func cmdPlatform(args []string) error {
	fs := flag.NewFlagSet("platform", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced grids")
	jobs := jobsFlag(fs)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Println("available platforms:")
		for _, p := range fsml.Platforms() {
			fmt.Printf("  %-18s %d cores, %d candidate events\n", p.Name, p.Machine.Cores, len(p.Catalogue))
		}
		return nil
	}
	name := strings.Join(fs.Args(), " ")
	pd, err := fsml.TrainForPlatform(name, fsml.TrainOptions{Quick: *quick, Parallelism: *jobs})
	if err != nil {
		return err
	}
	fmt.Printf("platform %s: selected %d events (+ normalizer)\n", pd.Platform.Name, len(pd.Selection.Selected)-1)
	fmt.Print(pd.Selection.String())
	fmt.Printf("\ntrained on %d instances; tree:\n%s", pd.Data.Len(), pd.Detector.Tree.String())
	return nil
}

func cmdRepro(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced grids")
	jobs := jobsFlag(fs)
	faultSpec := faultsFlag(fs)
	timeout := timeoutFlag(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("repro needs one experiment name or 'all' (see `fsml list`)")
	}
	fcfg, err := fsml.ParseFaultSpec(*faultSpec)
	if err != nil {
		return err
	}
	names := []string{fs.Arg(0)}
	if fs.Arg(0) == "all" {
		names = fsml.Experiments()
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	for _, name := range names {
		out, err := fsml.ReproduceContext(ctx, name, fsml.ExperimentOptions{Quick: *quick, Parallelism: *jobs, Faults: fcfg})
		if err != nil {
			return err
		}
		fmt.Printf("===== %s =====\n%s\n", name, out)
	}
	return nil
}

// cmdServe runs the long-running detection server until interrupted,
// then drains in-flight batches before exiting.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8723", "listen address (host:port; :0 picks a free port)")
	jobs := jobsFlag(fs)
	batch := fs.Int("batch", 16, "max classify requests per micro-batch (1 = no batching)")
	linger := fs.Duration("linger", 2*time.Millisecond, "how long a forming batch waits for stragglers")
	registryDir := fs.String("registry-dir", "", "persist models here and warm-start from it on boot")
	quick := fs.Bool("quick", true, "default detector trains on the reduced grids")
	seed := fs.Uint64("seed", 1, "default detector training seed")
	maxInflight := fs.Int("max-inflight", 64, "admitted requests per heavy endpoint before shedding (negative = unlimited)")
	shedAfter := fs.Duration("shed-after", 100*time.Millisecond, "how long an over-limit request may wait for a slot before a 429 (negative = shed immediately)")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive training failures that open a train spec's circuit (negative = no breakers)")
	breakerCooldown := fs.Duration("breaker-cooldown", 15*time.Second, "open-circuit wait before one half-open retrain probe")
	lcSpec := fs.String("lifecycle", "", `self-healing model lifecycle: "on" for defaults, or "alarms=3,window=2m,clear=2,every=1,shadow=64,agree=0.9,conf=0,probation=64,regress=0.25" ("" = off)`)
	faultSpec := faultsFlag(fs)
	fs.Parse(args)
	fcfg, err := fsml.ParseFaultSpec(*faultSpec)
	if err != nil {
		return err
	}
	var lcfg *fsml.LifecycleConfig
	if *lcSpec != "" {
		spec, err := fsml.ParseLifecycleSpec(*lcSpec)
		if err != nil {
			return err
		}
		lcfg = &fsml.LifecycleConfig{Spec: spec}
	}
	srv := fsml.NewServer(fsml.ServeConfig{
		Addr:             *addr,
		MaxBatch:         *batch,
		Linger:           *linger,
		Parallelism:      *jobs,
		RegistryDir:      *registryDir,
		DefaultDetector:  fsml.DetectorSpec{Quick: *quick, Seed: *seed}.Key(),
		Faults:           fcfg,
		MaxInflight:      *maxInflight,
		ShedAfter:        *shedAfter,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Lifecycle:        lcfg,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fsml: serving on http://%s (batch=%d linger=%s; ^C to stop)\n", srv.Addr(), *batch, *linger)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "fsml: shutting down, draining in-flight batches")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// cmdFleet runs the consistent-hash coordinator in front of a set of
// `fsml serve` backends: sharded routing, model replication, failover
// on node loss, rebalance on recovery.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8800", "coordinator listen address (host:port; :0 picks a free port)")
	peers := fs.String("peers", "", "comma-separated backend base URLs, e.g. http://127.0.0.1:8723,http://127.0.0.1:8724 (required)")
	replicas := fs.Int("replicas", 2, "ring successors that receive each uploaded model")
	vnodes := fs.Int("vnodes", 0, "virtual ring points per peer (0 = default)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "peer health-probe cadence (jittered)")
	probeTimeout := fs.Duration("probe-timeout", time.Second, "timeout of one peer probe")
	breakerThreshold := fs.Int("breaker-threshold", 2, "consecutive peer failures that open its circuit")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "open peer circuit wait before the next probe may close it")
	quiet := fs.Bool("quiet", false, "suppress probe/failover/replication logs")
	fs.Parse(args)
	if *peers == "" {
		return fmt.Errorf("fleet: -peers is required")
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	cfg := fsml.FleetConfig{
		Addr:             *addr,
		Peers:            peerList,
		Replicas:         *replicas,
		VNodes:           *vnodes,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	if !*quiet {
		cfg.Logf = log.New(os.Stderr, "", log.LstdFlags).Printf
	}
	co, err := fsml.NewFleet(cfg)
	if err != nil {
		return err
	}
	if err := co.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fsml: fleet coordinator on http://%s over %d peers (replicas=%d; ^C to stop)\n",
		co.Addr(), len(peerList), *replicas)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "fsml: coordinator shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return co.Shutdown(ctx)
}

// cmdWatch live-monitors the phased demo workload: window verdicts,
// phase transitions and drift alarms stream to stdout as they happen,
// either from a local session or relayed from a server's /v1/watch SSE
// endpoint. ^C truncates cleanly — the closing summary still prints,
// marked truncated.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	window := fs.String("window", "", `window spec "size[:stride[:hysteresis]]" (default 8:8:3)`)
	seed := fs.Uint64("seed", 1, "session seed (machine + PMU)")
	threads := fs.Int("threads", 6, "demo workload worker threads")
	iters := fs.Int("iters", 20000, "per-phase iterations per thread")
	sliceRounds := fs.Int("slice-rounds", 500, "scheduler rounds per slice sample")
	drift := fs.Bool("drift", true, "raise drift alarms against the model's tree envelope")
	asJSON := fs.Bool("json", false, "emit raw event JSON lines instead of the readable feed")
	quick := fs.Bool("quick", false, "reduced training (without -model/-server)")
	model := fs.String("model", "", "trained model path (default: train now)")
	jobs := jobsFlag(fs)
	server := fs.String("server", "", "watch via a running `fsml serve` at this URL instead of a local session")
	retries := fs.Int("retries", 4, "client dial retries when the server sheds or is briefly unavailable (with -server)")
	detector := fs.String("detector", "", "server-side detector registry key (with -server; \"\" = server default)")
	fs.Parse(args)
	if fs.NArg() > 1 || (fs.NArg() == 1 && fs.Arg(0) != fsml.StreamDemoProgram) {
		return fmt.Errorf("watch streams only the built-in %q workload", fsml.StreamDemoProgram)
	}

	// ^C cancels the session context; the engine still closes the stream
	// with a truncated done event, which prints below like any other.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	print := func(ev fsml.StreamEvent) error { return printWatchEvent(os.Stdout, ev, *asJSON) }

	if *server != "" {
		if *model != "" || *quick {
			return fmt.Errorf("-model/-quick configure a local session; use -detector with -server")
		}
		c := fsml.NewServeClient(*server)
		c.Retry = fsml.ServeRetryPolicy{Max: *retries}
		_, err := c.Watch(ctx, fsml.WatchQuery{
			Spec:        *window,
			Detector:    *detector,
			Seed:        *seed,
			Threads:     *threads,
			Iters:       *iters,
			SliceRounds: *sliceRounds,
			NoDrift:     !*drift,
		}, print)
		if err != nil && ctx.Err() != nil {
			// The server noticed the hangup; the truncated summary may not
			// have made it back, so say why the feed stopped.
			fmt.Fprintln(os.Stderr, "fsml: watch interrupted")
			return nil
		}
		return err
	}
	if *detector != "" {
		return fmt.Errorf("-detector selects a server-side model; use -model locally")
	}

	spec, err := fsml.ParseWindowSpec(*window)
	if err != nil {
		return err
	}
	det, err := loadOrTrain(*model, *quick, *jobs)
	if err != nil {
		return err
	}
	var env *fsml.StreamEnvelope
	if *drift {
		env = fsml.StreamEnvelopeFromTree(det.Tree, 0)
	}
	col := fsml.NewCollector()
	col.Parallelism = *jobs
	var printErr error
	mon, err := fsml.NewStreamMonitor(col, det, fsml.StreamMonitorConfig{
		Spec:        spec,
		SliceRounds: *sliceRounds,
		Seed:        *seed,
		Envelope:    env,
		OnEvent: func(ev fsml.StreamEvent) {
			if printErr == nil {
				printErr = print(ev)
			}
		},
	})
	if err != nil {
		return err
	}
	if _, err := mon.Run(ctx, fsml.PhasedKernels(*threads, *iters)); err != nil {
		return err
	}
	return printErr
}

// cmdLifecycle inspects a running server's model lifecycle: the state
// machine and active pointer ("status", the default), or the per-run
// retrain/shadow/promote ledger ("history").
func cmdLifecycle(args []string) error {
	fs := flag.NewFlagSet("lifecycle", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8723", "running `fsml serve` base URL")
	limit := fs.Int("limit", 16, "history runs to fetch, newest first (-1 = all)")
	retries := fs.Int("retries", 4, "client dial retries when the server sheds or is briefly unavailable")
	asJSON := fs.Bool("json", false, "emit the raw /v1/lifecycle JSON")
	fs.Parse(args)
	mode := "status"
	if fs.NArg() > 0 {
		mode = fs.Arg(0)
	}
	if fs.NArg() > 1 || (mode != "status" && mode != "history") {
		return fmt.Errorf("lifecycle: want `status` or `history`, got %q", strings.Join(fs.Args(), " "))
	}

	c := fsml.NewServeClient(*server)
	c.Retry = fsml.ServeRetryPolicy{Max: *retries}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	resp, err := c.Lifecycle(ctx, *limit)
	if err != nil {
		return err
	}
	if *asJSON {
		blob, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", blob)
		return nil
	}
	if !resp.Enabled {
		if resp.Error != "" {
			return fmt.Errorf("lifecycle: disabled on this server (startup error: %s)", resp.Error)
		}
		fmt.Println("lifecycle: disabled on this server (start it with `fsml serve -lifecycle on`)")
		return nil
	}
	if mode == "history" {
		if len(resp.History) == 0 {
			fmt.Println("lifecycle: no runs yet (no drift episode has triggered a retrain)")
			return nil
		}
		for _, r := range resp.History {
			printLifecycleRun(os.Stdout, r)
		}
		return nil
	}
	st := resp.Status
	if st == nil {
		return fmt.Errorf("lifecycle: server sent no status")
	}
	fmt.Printf("detector %q: %s\n", st.Name, st.State)
	fmt.Printf("  spec     %s\n", st.Spec.String())
	if st.ActiveKey != "" {
		fmt.Printf("  active   %s (version %d)\n", st.ActiveKey, st.Version)
	}
	if st.PreviousKey != "" {
		fmt.Printf("  previous %s\n", st.PreviousKey)
	}
	fmt.Printf("  evidence %d drift signals in window; %d runs recorded\n", st.Evidence, st.Runs)
	if st.Run != nil {
		fmt.Printf("  open run #%d (%s): shadow %d/%d agree, %d candidate wins\n",
			st.Run.Seq, st.Run.Outcome, st.Run.ShadowAgree, st.Run.ShadowTotal, st.Run.CandidateWins)
	}
	if st.LastError != "" {
		fmt.Printf("  last error: %s\n", st.LastError)
	}
	for _, tr := range st.Transitions {
		fmt.Printf("  %s  %-11s -> %-11s %s\n", tr.At.Format(time.RFC3339), tr.From, tr.To, tr.Reason)
	}
	return nil
}

// printLifecycleRun renders one ledger entry of `fsml lifecycle history`.
func printLifecycleRun(w io.Writer, r fsml.LifecycleRun) {
	fmt.Fprintf(w, "run #%d  %-11s %s  (evidence %d, seed %d)\n",
		r.Seq, r.Outcome, r.Started.Format(time.RFC3339), r.Evidence, r.Seed)
	if r.CandidateKey != "" {
		fmt.Fprintf(w, "  candidate %s", r.CandidateKey)
		if r.TrainAccuracy > 0 {
			fmt.Fprintf(w, "  (cv accuracy %.3f)", r.TrainAccuracy)
		}
		fmt.Fprintln(w)
	}
	if r.ShadowTotal > 0 {
		fmt.Fprintf(w, "  shadow    %d scored: %d agree, %d disagree, %d candidate wins (agreement %.3f)\n",
			r.ShadowTotal, r.ShadowAgree, r.ShadowDisagree, r.CandidateWins, r.Agreement)
	}
	if r.Version > 0 {
		fmt.Fprintf(w, "  flip      -> version %d (previous %s); probation %d scored, %d disagree\n",
			r.Version, r.PreviousKey, r.ProbationTotal, r.ProbationDisagree)
	}
	if r.LatencyP50 > 0 {
		fmt.Fprintf(w, "  mirror    p50 %.1fus  p95 %.1fus  p99 %.1fus\n",
			r.LatencyP50*1e6, r.LatencyP95*1e6, r.LatencyP99*1e6)
	}
	if r.Error != "" {
		fmt.Fprintf(w, "  error     %s\n", r.Error)
	}
}

// printWatchEvent renders one stream event: raw JSON lines for tooling,
// or a readable one-line-per-event feed.
func printWatchEvent(w io.Writer, ev fsml.StreamEvent, asJSON bool) error {
	if asJSON {
		blob, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", blob)
		return err
	}
	switch ev.Kind {
	case fsml.StreamKindWindow:
		v := ev.Window
		class := v.Class
		if class == "" {
			class = "(idle)"
		}
		note := ""
		if v.Degraded {
			note = fmt.Sprintf("  [degraded %.2f: %s]", v.Confidence, strings.Join(v.Suspects, ","))
		}
		_, err := fmt.Fprintf(w, "window %3d  samples [%3d,%3d)  %-8s smoothed %-8s%s\n",
			v.Index, v.Start, v.End, class, v.Smoothed, note)
		return err
	case fsml.StreamKindPhase:
		p := ev.Phase
		from := p.From
		if from == "" {
			from = "(start)"
		}
		_, err := fmt.Fprintf(w, ">>> phase  %s -> %s  (confirmed at window %d, begins window %d / sample %d)\n",
			from, p.To, p.Window, p.Start, p.Sample)
		return err
	case fsml.StreamKindDrift:
		d := ev.Drift
		_, err := fmt.Fprintf(w, "!!! drift  window %d: %s outside the training envelope (score %.2f)\n",
			d.Window, strings.Join(d.Features, ", "), d.Score)
		return err
	case fsml.StreamKindDriftClear:
		c := ev.DriftClear
		_, err := fmt.Fprintf(w, "--- drift cleared  window %d: back inside the envelope (episode began window %d, %d alarmed windows)\n",
			c.Window, c.Since, c.Windows)
		return err
	case fsml.StreamKindDone:
		s := ev.Summary
		runs := make([]string, len(s.PhaseRuns))
		for i, r := range s.PhaseRuns {
			runs[i] = fmt.Sprintf("%s[%d-%d]", r.Class, r.Start, r.End)
		}
		trunc := ""
		if s.Truncated {
			trunc = " (truncated)"
		}
		_, err := fmt.Fprintf(w, "done%s: %d samples, %d windows (%d classified), %d phase changes, %d drift alarms (%d cleared)\n"+
			"final class %s; timeline %s; %.4f simulated s\n",
			trunc, s.Samples, s.Windows, s.Classified, s.Phases, s.DriftAlarms, s.DriftCleared,
			s.Final, strings.Join(runs, " -> "), s.Seconds)
		return err
	}
	return nil
}

func cmdList() error {
	fmt.Println("benchmark programs:")
	for _, w := range fsml.Workloads() {
		inputs := make([]string, len(w.Inputs))
		for i, in := range w.Inputs {
			inputs[i] = in.Name
		}
		fmt.Printf("  %-8s %-18s paper: %-7s inputs: %s\n", w.Suite, w.Name, w.PaperClass, strings.Join(inputs, ","))
	}
	for name, why := range fsml.UnsupportedWorkloads() {
		fmt.Printf("  %-8s %-18s (not modeled: %s)\n", "parsec", name, why)
	}
	for _, w := range fsml.PathologyWorkloads() {
		inputs := make([]string, len(w.Inputs))
		for i, in := range w.Inputs {
			inputs[i] = in.Name
		}
		fmt.Printf("  %-8s %-18s paper: %-7s inputs: %s   (classify -ensemble)\n", w.Suite, w.Name, w.PaperClass, strings.Join(inputs, ","))
	}
	fmt.Println("\nexperiments:")
	fmt.Printf("  %s\n", strings.Join(fsml.Experiments(), " "))
	return nil
}
