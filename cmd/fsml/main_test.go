package main

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// modelPath lazily trains a quick model once and caches it on disk for
// every CLI test that takes -model.
var (
	modelOnce sync.Once
	modelFile string
	modelErr  error
)

func model(t *testing.T) string {
	t.Helper()
	modelOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fsml-cli-test")
		if err != nil {
			modelErr = err
			return
		}
		modelFile = filepath.Join(dir, "model.json")
		modelErr = cmdTrain([]string{"-quick", "-o", modelFile})
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelFile
}

func TestCmdTrainWritesModel(t *testing.T) {
	path := model(t)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Errorf("model file is empty")
	}
}

func TestCmdTreeWithModel(t *testing.T) {
	if err := cmdTree([]string{"-model", model(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdClassifyWithModel(t *testing.T) {
	if err := cmdClassify([]string{"-quick", "-model", model(t), "histogram"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdClassify([]string{"-quick", "-model", model(t)}); err == nil {
		t.Errorf("classify without programs accepted")
	}
	if err := cmdClassify([]string{"-quick", "-model", model(t), "no-such"}); err == nil {
		t.Errorf("unknown program accepted")
	}
}

func TestCmdShadow(t *testing.T) {
	if err := cmdShadow([]string{"-threads", "4", "streamcluster"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdShadow([]string{}); err == nil {
		t.Errorf("shadow without a program accepted")
	}
	if err := cmdShadow([]string{"no-such"}); err == nil {
		t.Errorf("unknown program accepted")
	}
	if err := cmdShadow([]string{"-threads", "12", "streamcluster"}); err == nil {
		t.Errorf("12 threads should exceed the tool limit")
	}
}

func TestCmdTrace(t *testing.T) {
	dir := t.TempDir()
	trPath := filepath.Join(dir, "fs.trace")
	content := ""
	for tid := 0; tid < 4; tid++ {
		content += "T" + string(rune('0'+tid)) + " L 0x20000 x2000\n"
		content += "T" + string(rune('0'+tid)) + " S 0x20000 x2000\n"
	}
	if err := os.WriteFile(trPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrace([]string{"-model", model(t), "-verify", trPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrace([]string{"-model", model(t)}); err == nil {
		t.Errorf("trace without files accepted")
	}
	if err := cmdTrace([]string{"-model", model(t), filepath.Join(dir, "missing.trace")}); err == nil {
		t.Errorf("missing trace file accepted")
	}
	bad := filepath.Join(dir, "bad.trace")
	os.WriteFile(bad, []byte("garbage\n"), 0o644)
	if err := cmdTrace([]string{"-model", model(t), bad}); err == nil {
		t.Errorf("malformed trace accepted")
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPlatformList(t *testing.T) {
	if err := cmdPlatform([]string{}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlatform([]string{"-quick", "no", "such", "platform"}); err == nil {
		t.Errorf("unknown platform accepted")
	}
}

func TestCmdReproValidation(t *testing.T) {
	if err := cmdRepro([]string{"-quick"}); err == nil {
		t.Errorf("repro without an experiment accepted")
	}
	if err := cmdRepro([]string{"-quick", "tableZZ"}); err == nil {
		t.Errorf("unknown experiment accepted")
	}
	if err := cmdRepro([]string{"-quick", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOrTrainRejectsBadModel(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not a model"), 0o644)
	if _, err := loadOrTrain(bad, true, 1); err == nil {
		t.Errorf("garbage model accepted")
	}
	if _, err := loadOrTrain(filepath.Join(dir, "missing.json"), true, 1); err == nil {
		t.Errorf("missing model accepted")
	}
}

func TestCmdMeasure(t *testing.T) {
	if err := cmdMeasure([]string{"-threads", "4", "histogram"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMeasure([]string{}); err == nil {
		t.Errorf("measure without a program accepted")
	}
	if err := cmdMeasure([]string{"no-such"}); err == nil {
		t.Errorf("unknown program accepted")
	}
}

func TestCmdRecordAndReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.trace")
	if err := cmdRecord([]string{"-threads", "2", "-o", path, "histogram"}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	// The recorded trace must classify through the trace command.
	if err := cmdTrace([]string{"-model", model(t), path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRecord([]string{}); err == nil {
		t.Errorf("record without a program accepted")
	}
	if err := cmdRecord([]string{"no-such"}); err == nil {
		t.Errorf("unknown program accepted")
	}
}

func TestCmdReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "rep.md")
	if err := cmdReport([]string{"-quick", "-model", model(t), "-o", out, "linear_regression"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil || len(blob) == 0 {
		t.Fatalf("report not written: %v", err)
	}
	jsonOut := filepath.Join(dir, "rep.json")
	if err := cmdReport([]string{"-quick", "-model", model(t), "-json", "-o", jsonOut, "histogram"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReport([]string{"-quick", "-model", model(t)}); err == nil {
		t.Errorf("report without a program accepted")
	}
	if err := cmdReport([]string{"-quick", "-model", model(t), "dedup"}); err == nil {
		t.Errorf("dedup should fail with the footnote")
	}
}
