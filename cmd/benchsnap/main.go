// Command benchsnap runs a set of Go benchmarks and writes the parsed
// results as a JSON snapshot, so the perf numbers a PR claims ride with
// the commit that produced them (BENCH_*.json at the repo root) in a
// machine-diffable form instead of only as prose in EXPERIMENTS.md.
//
// Usage:
//
//	go run ./cmd/benchsnap -o BENCH_6.json \
//	    -bench 'FlatPredict|ClassifyBatch|ServeClassify' \
//	    ./internal/ml ./internal/serve
//
// It shells out to `go test -run ^$ -bench ...` per package and parses
// the standard benchmark output lines, keeping every reported metric:
// ns/op, B/op, allocs/op, and custom ReportMetric units.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name, including sub-benchmark path and
	// the -N GOMAXPROCS suffix Go appends.
	Name string `json:"name"`
	// Package is the Go package the benchmark lives in.
	Package string `json:"package"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics holds every reported unit: "ns/op", "B/op", "allocs/op",
	// plus any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file format.
type Snapshot struct {
	// Tool records the generator, for provenance.
	Tool string `json:"tool"`
	// GoVersion is the toolchain the numbers came from.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the parallelism the numbers came from (this repo's
	// canonical numbers are single-CPU; see EXPERIMENTS.md).
	GOMAXPROCS int `json:"gomaxprocs"`
	// Bench is the -bench pattern that selected the set.
	Bench string `json:"bench"`
	// Benchtime is the -benchtime used (empty = go test default).
	Benchtime string `json:"benchtime,omitempty"`
	// Results are the parsed lines, in run order.
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	bench := flag.String("bench", ".", "benchmark regexp, passed to -bench")
	benchtime := flag.String("benchtime", "", "passed to -benchtime when set")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: need at least one package argument")
		os.Exit(2)
	}
	snap := Snapshot{
		Tool:       "cmd/benchsnap",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *bench,
		Benchtime:  *benchtime,
	}
	for _, pkg := range pkgs {
		results, err := runPackage(pkg, *bench, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		snap.Results = append(snap.Results, results...)
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
}

// runPackage benchmarks one package and parses its output.
func runPackage(pkg, bench, benchtime string) ([]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBlob, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	var results []Result
	for _, line := range strings.Split(string(outBlob), "\n") {
		r, ok := parseLine(line, pkg)
		if ok {
			results = append(results, r)
		}
	}
	return results, nil
}

// parseLine parses one "BenchmarkX-N  iters  v unit  v unit ..." line.
func parseLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
