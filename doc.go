// Package fsml detects false sharing in parallel programs from hardware
// performance-event counts using a machine-learned classifier,
// reproducing Jayasena et al., "Detection of False Sharing Using Machine
// Learning" (SC'13).
//
// # What it does
//
// False sharing — threads on different cores writing distinct variables
// that happen to occupy one cache line — can erase the speedup of a
// parallel program while remaining invisible in the source. The SC'13
// approach detects it cheaply: train a decision-tree classifier on
// normalized performance-event counts from mini-programs whose false
// sharing can be switched on and off, then classify any program's counts
// as "good", "bad-fs" (false sharing) or "bad-ma" (inefficient memory
// access).
//
// Because portable Go has neither PMU access nor control over cache-line
// placement, this library ships its own execution substrate: a
// deterministic multicore simulator with set-associative L1/L2/L3 caches,
// MESI coherence with snoop responses, DTLB, line-fill buffers, a
// stream prefetcher and an emulated Westmere-style PMU (the 16 events of
// the paper's Table 2 plus a 46-event candidate catalogue). Workloads
// are Kernels — resumable thread state machines issuing Load/Store/Exec
// operations against explicitly laid-out simulated memory.
//
// # Quick start
//
//	det, report, err := fsml.Train(fsml.TrainOptions{Quick: true})
//	if err != nil { ... }
//	fmt.Println(report.Tree)            // the learned decision tree
//
//	verdict, err := fsml.ClassifyProgram(det, "streamcluster", fsml.SweepOptions{Quick: true})
//	fmt.Println(verdict.Class)          // "bad-fs"
//
// Custom workloads implement machine.Kernel through the re-exported
// kernel primitives; see examples/quickstart and examples/dotproduct.
//
// # Parallelism and determinism
//
// Training grids and benchmark sweeps are batches of independent
// simulations, and every batch entry point accepts a Parallelism knob
// (TrainOptions.Parallelism, SweepOptions.Parallelism,
// ExperimentOptions.Parallelism, report.Options.Parallelism, the
// collector's Parallelism field, and the -j flag of cmd/fsml): 0 fans
// cases out over GOMAXPROCS workers, 1 runs the sequential reference
// path, any other value caps the worker count.
//
// Parallel execution is bit-for-bit deterministic. Each case's seed is
// a pure function of its position in the enumerated batch — never of
// execution order — and results are reassembled in submission order
// before any aggregation, so detectors, reports and rendered tables are
// byte-identical at every parallelism setting; only wall-clock time
// changes. The engine lives in internal/sched: a bounded-queue worker
// pool with context cancellation, lowest-index-first error propagation
// and serialized progress callbacks (the Progress fields of the same
// option structs).
//
// # Layout
//
//   - internal/machine, internal/cache, internal/mem, internal/pmu — the
//     simulated platform
//   - internal/sched — the deterministic batch engine behind every
//     collection grid and case sweep
//   - internal/miniprog — the training mini-programs (§2.2), plus the
//     pathology kernel families (tlbwalk, numaping, bwsat) behind the
//     widened label space
//   - internal/ml — C4.5 (J48 analog), naive Bayes, k-NN,
//     cross-validation; trained trees compile to a flattened
//     array form (FlatTree) for allocation-free batch inference,
//     bit-identical to the pointer tree
//   - internal/core — event selection, training-data collection, the
//     detector
//   - internal/ensemble — the multi-pathology ensemble: per-class
//     bagged C4.5 committees around the untouched 3-class tree,
//     ranking good/bad-fs/bad-ma/tlb-thrash/numa-remote/bw-saturated
//     with calibrated scores, behind `fsml train -ensemble`,
//     `fsml classify -ensemble` and POST /v1/classify?ensemble=1
//   - internal/suite — Phoenix and PARSEC workload analogs (§4)
//   - internal/shadow, internal/sheriff — the verification and
//     comparison baselines
//   - internal/exps — regenerates every table and figure of the paper
//   - internal/serve, internal/resilience — the long-running detection
//     service: micro-batched inference, model registry, admission
//     control and circuit breakers, plus a length-prefixed binary
//     classify protocol (POST /v1/classify-bin) for batched hot-path
//     inference
//   - internal/stream — online streaming detection: sliding-window
//     classification with phase and drift tracking, behind GET
//     /v1/watch and `fsml watch`
//   - internal/perfingest — real `perf stat` / `perf c2c report`
//     output parsed and mapped onto the Table-2 feature space through
//     an explicit event-alias table, behind `fsml classify -perf` and
//     text/x-perf-stat uploads to POST /v1/classify; missing events
//     degrade confidence instead of erroring
//   - internal/fleet — horizontal scaling: a consistent-hash
//     coordinator (`fsml fleet`) that shards classify/watch traffic
//     across many servers by detector key, replicates uploads to ring
//     successors, fails over on node loss and rebalances replicas when
//     the live-peer set changes
//   - internal/lifecycle — the self-healing model loop behind
//     `fsml serve -lifecycle`: debounced drift alarms trigger a
//     retrain, the candidate shadow-scores against the incumbent on
//     live traffic, and versioned promote/rollback flips the serving
//     registry's active pointer (audited in a per-run ledger,
//     inspected via `fsml lifecycle` / GET /v1/lifecycle)
//
// See DESIGN.md for the substitution map (paper hardware -> simulator)
// and EXPERIMENTS.md for paper-vs-measured results.
package fsml
